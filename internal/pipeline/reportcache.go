package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"dfg/internal/store"
)

// ReportSchemaVersion names the wire/disk format of Report. Bump it on any
// change to Report's JSON shape: the schema version is folded into every
// report-level cache key and into the persistent store's artifact headers,
// so a bump atomically invalidates every stale artifact (the store's
// open-time migration hook reclaims their space), and the wire protocol's
// handshake refuses to pair a frontier and a backend that disagree on it.
// Version history:
//
//	1: initial shape.
//	2: added the "bytecode" section (BytecodeReport) for KindBytecode
//	   requests, and Options gained SourceKind (folded into every cache
//	   key via the options fingerprint).
const ReportSchemaVersion = 2

// ReportTier says which cache tier satisfied an AnalyzeReport call.
type ReportTier string

const (
	TierCompute ReportTier = "compute" // ran the pipeline
	TierLRU     ReportTier = "lru"     // in-memory report cache
	TierStore   ReportTier = "store"   // persistent artifact store
)

// ReportResult is the outcome of AnalyzeReport: the deterministic Report
// JSON plus provenance. Raw is canonical (compact json.Marshal of Report) —
// every tier returns the same bytes for the same key, which is what the
// end-to-end differential tests pin.
type ReportResult struct {
	Key  string // report-level content address
	Raw  []byte // canonical Report JSON
	Tier ReportTier
	// Stages is per-stage satisfaction info; populated only when the report
	// was computed this call (cache tiers do not re-run stages).
	Stages map[Stage]StageInfo
}

// ReportKey is the content address of the Report for (source, options,
// stages): the artifact-store key and the singleflight/dedup identity. The
// stage set is part of the key because the Report's shape depends on which
// stages ran; the schema version is part of the key so a format change can
// never serve a stale artifact.
func ReportKey(source string, opts Options, stages []Stage) (string, error) {
	if len(stages) == 0 {
		stages = AllStages()
	}
	plan, err := expandStages(stages)
	if err != nil {
		return "", err
	}
	names := make([]string, len(plan))
	execRequested := false
	for i, s := range plan {
		names[i] = string(s)
		if s == StageExec {
			execRequested = true
		}
	}
	k := key(source, opts) + "/stages=" + strings.Join(names, ",")
	if execRequested {
		k += fmt.Sprintf("/inputs=%v", opts.ExecInputs)
	}
	return k + fmt.Sprintf("/schema=%d", ReportSchemaVersion), nil
}

// AnalyzeReport answers a request at Report granularity through the two-tier
// cache: the in-memory report LRU first, then the persistent store, then a
// full Analyze (whose stage artifacts still flow through the stage-level
// LRU). Computed reports are written through to both tiers. This is the
// entry point the wire backends (cmd/dfg-worker) and the store-backed serve
// path use; callers that need live artifacts (DOT rendering) use Analyze.
func (e *Engine) AnalyzeReport(ctx context.Context, req Request) (*ReportResult, error) {
	rkey, err := ReportKey(req.Source, req.Options, req.Stages)
	if err != nil {
		return nil, err
	}
	if e.reportLRU != nil {
		if v, ok := e.reportLRU.get(rkey); ok {
			e.metrics.reportHits.Add(1)
			return &ReportResult{Key: rkey, Raw: v.([]byte), Tier: TierLRU}, nil
		}
	}
	e.metrics.reportMisses.Add(1)
	if e.cfg.Store != nil {
		if raw, ok := e.cfg.Store.Get(rkey); ok {
			if e.reportLRU != nil {
				e.reportLRU.put(rkey, raw)
			}
			return &ReportResult{Key: rkey, Raw: raw, Tier: TierStore}, nil
		}
	}
	res, err := e.Analyze(ctx, req)
	if err != nil {
		return nil, err
	}
	rep := res.Report()
	raw, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("pipeline: marshal report: %w", err)
	}
	if e.cfg.Store != nil {
		if err := e.cfg.Store.Put(rkey, raw); err != nil {
			// A full disk or permission problem must not fail the analysis;
			// the report was computed. Count it and serve.
			e.metrics.storePutErrors.Add(1)
		}
	}
	if e.reportLRU != nil {
		e.reportLRU.put(rkey, raw)
	}
	return &ReportResult{Key: rkey, Raw: raw, Tier: TierCompute, Stages: res.Stages}, nil
}

// ImportReport accepts a finished Report pushed from elsewhere — the
// frontier's replication and read-repair path — and installs it in both
// cache tiers under its report key, bytes verbatim. Storing the pushed
// bytes (rather than re-marshalling) preserves the byte-identical
// cross-worker property the differential tests pin. The key is trusted:
// it was derived by a worker running the same ReportKey code behind the
// same schema-checked wire handshake.
func (e *Engine) ImportReport(key string, raw []byte) error {
	if key == "" || len(raw) == 0 {
		return fmt.Errorf("pipeline: import needs a key and a payload")
	}
	if !json.Valid(raw) {
		return fmt.Errorf("pipeline: imported report for %q is not valid JSON", key)
	}
	if e.cfg.Store != nil {
		if err := e.cfg.Store.Put(key, raw); err != nil {
			e.metrics.storePutErrors.Add(1)
			return err
		}
	}
	if e.reportLRU != nil {
		e.reportLRU.put(key, raw)
	}
	return nil
}

// ArtifactStore exposes the engine's persistent artifact store (nil when
// the engine is purely in-memory).
func (e *Engine) ArtifactStore() *store.Store { return e.cfg.Store }
