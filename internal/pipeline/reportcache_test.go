package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dfg/internal/store"
	"dfg/internal/workload"
)

func storeEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	st, err := store.Open(dir, store.Options{Schema: ReportSchemaVersion, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Store: st})
}

// TestAnalyzeReportTiers walks one request through all three tiers:
// compute (cold), LRU (same engine), store (fresh engine on the same dir,
// i.e. a process restart), asserting byte-identical Report JSON each time.
func TestAnalyzeReportTiers(t *testing.T) {
	dir := t.TempDir()
	src := workload.Mixed(15, 7).String()
	req := Request{Source: src}

	e1 := storeEngine(t, dir)
	r1, err := e1.AnalyzeReport(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tier != TierCompute {
		t.Fatalf("cold tier = %s, want compute", r1.Tier)
	}
	if len(r1.Stages) == 0 {
		t.Fatal("computed report carries no stage info")
	}

	r2, err := e1.AnalyzeReport(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tier != TierLRU {
		t.Fatalf("warm tier = %s, want lru", r2.Tier)
	}
	if !bytes.Equal(r1.Raw, r2.Raw) {
		t.Fatal("LRU tier returned different bytes")
	}

	// "Restart": a fresh engine, fresh LRU, same store directory.
	e2 := storeEngine(t, dir)
	r3, err := e2.AnalyzeReport(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Tier != TierStore {
		t.Fatalf("post-restart tier = %s, want store", r3.Tier)
	}
	if !bytes.Equal(r1.Raw, r3.Raw) {
		t.Fatal("store tier returned different bytes")
	}
	// And the store hit promotes into the new engine's LRU.
	r4, err := e2.AnalyzeReport(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Tier != TierLRU {
		t.Fatalf("post-promotion tier = %s, want lru", r4.Tier)
	}

	snap := e2.Snapshot()
	if snap.ReportCache == nil || snap.Store == nil {
		t.Fatalf("snapshot missing report-cache/store stats: %+v", snap)
	}
	if snap.Store.Hits != 1 {
		t.Fatalf("store hits = %d, want 1", snap.Store.Hits)
	}
	if snap.ReportCache.LRUHits != 1 || snap.ReportCache.LRUMisses != 1 {
		t.Fatalf("report cache stats = %+v, want 1 hit / 1 miss", snap.ReportCache)
	}
}

// TestAnalyzeReportMatchesAnalyze: the Raw bytes equal a compact marshal of
// Analyze's Report — the property the frontier's end-to-end differential
// relies on.
func TestAnalyzeReportMatchesAnalyze(t *testing.T) {
	src := workload.Mixed(12, 3).String()
	e := storeEngine(t, t.TempDir())
	rr, err := e.AnalyzeReport(context.Background(), Request{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(Config{}).Analyze(context.Background(), Request{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rr.Raw, want) {
		t.Fatalf("AnalyzeReport bytes differ from in-process Report:\n%s\n%s", rr.Raw, want)
	}
}

// TestReportKeySensitivity: the key must separate options, stage sets, exec
// inputs, and must carry the schema version.
func TestReportKeySensitivity(t *testing.T) {
	base, err := ReportKey("read a; print a;", Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := ReportKey("read a; print a;", Options{Predicates: true}, nil)
	if base == pred {
		t.Fatal("predicates option not in the key")
	}
	sub, _ := ReportKey("read a; print a;", Options{}, []Stage{StageCFG})
	if base == sub {
		t.Fatal("stage set not in the key")
	}
	ex1, _ := ReportKey("read a; print a;", Options{ExecInputs: []int64{1}}, []Stage{StageExec})
	ex2, _ := ReportKey("read a; print a;", Options{ExecInputs: []int64{2}}, []Stage{StageExec})
	if ex1 == ex2 {
		t.Fatal("exec inputs not in the key when exec is requested")
	}
	// Inputs must NOT split the cache when exec is not requested.
	in1, _ := ReportKey("read a; print a;", Options{ExecInputs: []int64{1}}, nil)
	in2, _ := ReportKey("read a; print a;", Options{ExecInputs: []int64{2}}, nil)
	if in1 != in2 {
		t.Fatal("exec inputs split the key without the exec stage")
	}
	if _, err := ReportKey("x", Options{}, []Stage{"nope"}); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

// TestAnalyzeReportWithoutStore: an engine with no store still works (pure
// compute each call at report level; stage LRU still memoizes underneath).
func TestAnalyzeReportWithoutStore(t *testing.T) {
	e := New(Config{})
	rr, err := e.AnalyzeReport(context.Background(), Request{Source: "read a; print a + 1;"})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Tier != TierCompute || len(rr.Raw) == 0 {
		t.Fatalf("storeless AnalyzeReport = %+v", rr)
	}
	if e.ArtifactStore() != nil {
		t.Fatal("ArtifactStore should be nil without a store")
	}
}

// TestAnalyzeReportErrors: analysis failures surface as errors, not cached
// artifacts — a parse error must not poison either tier.
func TestAnalyzeReportErrors(t *testing.T) {
	e := storeEngine(t, t.TempDir())
	if _, err := e.AnalyzeReport(context.Background(), Request{Source: "x := ;"}); err == nil {
		t.Fatal("parse error not surfaced")
	}
	if n := e.ArtifactStore().Len(); n != 0 {
		t.Fatalf("failed analysis left %d store artifacts", n)
	}
}
