package regions

import (
	"fmt"
	"sort"
	"strings"

	"dfg/internal/cfg"
	"dfg/internal/graph"
)

// BruteControlDepClasses groups the live edges of g by their control
// dependence sets, computed directly from Definition 2 via edge
// postdominance: edge x is control dependent on branch edge b iff x
// postdominates b and x does not postdominate src(b). It is the O(E²)
// oracle against which the O(E) cycle-equivalence classes are validated
// (Claim 1 states the two partitions coincide).
func BruteControlDepClasses(g *cfg.Graph) map[cfg.EdgeID]int {
	dom := cfg.NewDominance(g)
	live := g.LiveEdges()

	// Branch edges: out-edges of switch nodes (the only nodes with >1
	// successor).
	var branches []cfg.EdgeID
	for _, n := range g.Nodes {
		if len(g.OutEdges(n.ID)) > 1 {
			branches = append(branches, g.OutEdges(n.ID)...)
		}
	}

	sig := map[cfg.EdgeID]string{}
	for _, x := range live {
		var deps []string
		for _, b := range branches {
			if dom.EdgePostdominatesEdge(x, b) && !dom.EdgePostdominatesNode(x, g.Edge(b).Src) {
				deps = append(deps, fmt.Sprintf("e%d", b))
			}
		}
		// The virtual ENTRY branch (ENTRY→start / ENTRY→end in the FOW
		// augmentation, equivalently the end→start edge of Claim 1): an
		// edge executed on every run is control dependent on program entry.
		// Without this marker, a loop's pre-header spine would wrongly
		// coincide with the loop body's class.
		if dom.EdgePostdominatesNode(x, g.Start) {
			deps = append(deps, "ENTRY")
		}
		sort.Strings(deps)
		sig[x] = strings.Join(deps, ",")
	}
	return classesFromSignatures(live, sig)
}

// BruteCycleEquivClasses groups live edges by directed cycle equivalence of
// their dummy nodes in the end→start-augmented split graph, computed from
// first principles: dummies a and b are equivalent iff there is no directed
// cycle through a avoiding b nor one through b avoiding a. A cycle through
// a avoiding b exists iff a lies on a cycle of the graph with b removed.
// O(V·E); for tests only.
func BruteCycleEquivClasses(g *cfg.Graph) map[cfg.EdgeID]int {
	live := g.LiveEdges()
	n := g.NumNodes()
	dummy := make(map[cfg.EdgeID]int, len(live))
	for i, e := range live {
		dummy[e] = n + i
	}
	total := n + len(live) + 1
	endStart := total - 1

	d := graph.NewDirected(total)
	for i, eid := range live {
		e := g.Edge(eid)
		d.AddEdge(int(e.Src), n+i)
		d.AddEdge(n+i, int(e.Dst))
	}
	d.AddEdge(int(g.End), endStart)
	d.AddEdge(endStart, int(g.Start))

	// onCycleWithout[b][a]: a lies on a directed cycle avoiding node b.
	onCycleAvoiding := func(b int) []bool {
		sub := graph.NewDirected(total)
		for u, ss := range d.Succ {
			if u == b {
				continue
			}
			for _, v := range ss {
				if v != b {
					sub.AddEdge(u, v)
				}
			}
		}
		comp, _ := graph.SCC(sub)
		size := map[int]int{}
		for u := 0; u < total; u++ {
			size[comp[u]]++
		}
		out := make([]bool, total)
		for u := 0; u < total; u++ {
			if u == b {
				continue
			}
			if size[comp[u]] > 1 {
				out[u] = true
			}
			for _, v := range sub.Succ[u] {
				if v == u {
					out[u] = true // self loop
				}
			}
		}
		return out
	}

	// For each pair of dummies, decide equivalence.
	avoid := map[int][]bool{}
	for _, eid := range live {
		avoid[dummy[eid]] = onCycleAvoiding(dummy[eid])
	}

	// Union-find over live edges.
	parent := map[cfg.EdgeID]cfg.EdgeID{}
	var find func(x cfg.EdgeID) cfg.EdgeID
	find = func(x cfg.EdgeID) cfg.EdgeID {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, e := range live {
		parent[e] = e
	}
	for i, a := range live {
		for _, b := range live[i+1:] {
			da, db := dummy[a], dummy[b]
			if !avoid[db][da] && !avoid[da][db] {
				parent[find(a)] = find(b)
			}
		}
	}
	sig := map[cfg.EdgeID]string{}
	for _, e := range live {
		sig[e] = fmt.Sprintf("%d", find(e))
	}
	return classesFromSignatures(live, sig)
}

// classesFromSignatures densely renumbers a signature map into class ids.
func classesFromSignatures(live []cfg.EdgeID, sig map[cfg.EdgeID]string) map[cfg.EdgeID]int {
	renum := map[string]int{}
	out := map[cfg.EdgeID]int{}
	for _, e := range live {
		c, ok := renum[sig[e]]
		if !ok {
			c = len(renum)
			renum[sig[e]] = c
		}
		out[e] = c
	}
	return out
}

// SamePartition reports whether a dense edge-class table (as returned by
// EdgeClasses; -1 for dead edges) and a brute-force edge→class map induce
// the same partition of the live edges (class ids need not match).
func SamePartition(a []int, b map[cfg.EdgeID]int) bool {
	liveA := 0
	for _, c := range a {
		if c >= 0 {
			liveA++
		}
	}
	if liveA != len(b) {
		return false
	}
	fwd := map[int]int{}
	bwd := map[int]int{}
	for e, cb := range b {
		if int(e) >= len(a) || a[e] < 0 {
			return false
		}
		ca := a[e]
		if mapped, ok := fwd[ca]; ok {
			if mapped != cb {
				return false
			}
		} else {
			fwd[ca] = cb
		}
		if mapped, ok := bwd[cb]; ok {
			if mapped != ca {
				return false
			}
		} else {
			bwd[cb] = ca
		}
	}
	return true
}
