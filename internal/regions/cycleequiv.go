// Package regions implements Section 3.1 of Johnson & Pingali (PLDI 1993):
// finding the sets of CFG edges that have the same control dependence, in
// O(E) time, by reduction to cycle equivalence.
//
// The reduction chain is exactly the paper's:
//
//	Claim 1: CFG edges a and b have the same control dependence iff their
//	  dummy nodes are cycle equivalent in the strongly connected graph
//	  formed by adding the edge end→start.
//
//	Claim 2: nodes a and b are cycle equivalent in a strongly connected
//	  directed graph S iff they are cycle equivalent in the undirected
//	  graph G' formed by splitting every node n of S into n_in, n, n_out
//	  (in-edges attach to n_in, out-edges leave n_out, plus n_in→n→n_out)
//	  and undirecting all edges.
//
// Undirected cycle equivalence is computed by the bracket-set depth-first
// search that the paper sketches ("our algorithm for finding undirected
// cycle equivalence is based on depth-first search and runs in O(E) time;
// the details are omitted") and that the same authors published in full as
// the Program Structure Tree paper (Johnson, Pearson & Pingali, PLDI 1994).
// Notably, the construction requires neither dominators nor postdominators.
//
// On top of the equivalence classes, the package derives canonical
// single-entry single-exit (SESE) regions — consecutive same-class edges in
// dominance order — and the program structure tree that nests them.
package regions

import (
	"fmt"

	"dfg/internal/graph"
)

// bracket is an entry in a bracket list: a real backedge or a capping
// backedge of the cycle-equivalence DFS. Brackets live in doubly-linked
// lists that support O(1) concatenation and deletion.
type bracket struct {
	prev, next *bracket

	capping bool
	edge    int // undirected edge index (real backedges only)

	// recentSize/recentClass memoize the (top bracket, set size) → class
	// assignment rule.
	recentSize  int
	recentClass int

	// class is the equivalence class of the backedge itself, assigned when
	// it is the sole bracket of some tree edge, or fresh on retirement.
	class int
}

// bracketList is a doubly-linked list with O(1) push, delete and concat.
type bracketList struct {
	head, tail *bracket
	size       int
}

func (l *bracketList) push(b *bracket) {
	b.prev = nil
	b.next = l.head
	if l.head != nil {
		l.head.prev = b
	}
	l.head = b
	if l.tail == nil {
		l.tail = b
	}
	l.size++
}

func (l *bracketList) delete(b *bracket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		l.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		l.tail = b.prev
	}
	b.prev, b.next = nil, nil
	l.size--
}

// concat moves all elements of other onto the bottom of l, emptying other.
func (l *bracketList) concat(other *bracketList) {
	if other.size == 0 {
		return
	}
	if l.size == 0 {
		l.head, l.tail, l.size = other.head, other.tail, other.size
	} else {
		l.tail.next = other.head
		other.head.prev = l.tail
		l.tail = other.tail
		l.size += other.size
	}
	other.head, other.tail, other.size = nil, nil, 0
}

// UndirectedCycleEquiv computes cycle-equivalence classes for the edges of a
// connected undirected multigraph: edges a and b are in the same class iff
// every cycle containing a also contains b and vice versa. Bridge edges
// (edges on no cycle) all share one class, matching the definition
// vacuously. The result maps edge index → class id, and the number of
// classes. Runs in O(N+M).
func UndirectedCycleEquiv(u *graph.Undirected) ([]int, int) {
	n := u.N
	if n == 0 {
		return nil, 0
	}

	// --- undirected DFS from node 0, recording tree structure -----------
	const none = -1
	dfsnum := make([]int, n)
	parent := make([]int, n)     // DFS tree parent
	parentEdge := make([]int, n) // edge index used to reach the node
	order := make([]int, 0, n)   // nodes in preorder
	for i := range dfsnum {
		dfsnum[i] = none
		parent[i] = none
		parentEdge[i] = none
	}
	type frame struct {
		node int
		iter int
	}
	stack := []frame{{0, 0}}
	dfsnum[0] = 0
	order = append(order, 0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		adj := u.Adj[f.node]
		if f.iter < len(adj) {
			h := adj[f.iter]
			f.iter++
			if dfsnum[h.To] == none {
				dfsnum[h.To] = len(order)
				order = append(order, h.To)
				parent[h.To] = f.node
				parentEdge[h.To] = h.Edge
				stack = append(stack, frame{h.To, 0})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}
	if len(order) != n {
		panic("regions: undirected graph not connected")
	}

	isTree := make([]bool, u.M)
	for v := 0; v < n; v++ {
		if parentEdge[v] != none {
			isTree[parentEdge[v]] = true
		}
	}

	// Classify non-tree edges as backedges (descendant, ancestor) and index
	// them by both endpoints. In an undirected DFS every non-tree edge
	// joins an ancestor/descendant pair; with a multigraph a parallel copy
	// of a tree edge is a backedge bracketing that tree edge, and a self
	// loop brackets nothing.
	children := make([][]int, n) // tree children
	for v := 0; v < n; v++ {
		if parent[v] != none {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}

	backsFrom := make([][]*bracket, n) // backedges (d,a) indexed by d
	backsTo := make([][]*bracket, n)   // indexed by a
	brackets := make([]*bracket, u.M)  // edge index → bracket (backedges only)
	selfLoop := make([]bool, u.M)

	// Enumerate each undirected edge once via adjacency of the endpoint
	// with smaller dfsnum (ancestor side stores it too; dedupe by edge id).
	seenEdge := make([]bool, u.M)
	for v := 0; v < n; v++ {
		for _, h := range u.Adj[v] {
			if seenEdge[h.Edge] {
				continue
			}
			seenEdge[h.Edge] = true
			if isTree[h.Edge] {
				continue
			}
			a, b := v, h.To
			if a == b {
				selfLoop[h.Edge] = true
				continue
			}
			// descendant is the endpoint with larger dfsnum
			d, anc := a, b
			if dfsnum[d] < dfsnum[anc] {
				d, anc = anc, d
			}
			br := &bracket{edge: h.Edge, recentSize: -1, class: -1}
			brackets[h.Edge] = br
			backsFrom[d] = append(backsFrom[d], br)
			backsTo[anc] = append(backsTo[anc], br)
		}
	}
	// Record endpoints per edge for hi computation.
	endA := make([]int, u.M)
	endB := make([]int, u.M)
	for i := range endA {
		endA[i], endB[i] = none, none
	}
	for v := 0; v < n; v++ {
		for _, h := range u.Adj[v] {
			if endA[h.Edge] == none {
				endA[h.Edge] = v
				endB[h.Edge] = h.To
			}
		}
	}

	nextClass := 0
	newClass := func() int { c := nextClass; nextClass++; return c }

	classOf := make([]int, u.M)
	for i := range classOf {
		classOf[i] = -1
	}

	hi := make([]int, n)
	blist := make([]*bracketList, n)
	cappingTo := make([][]*bracket, n) // capping backedges ending at node

	bridgeClass := -1 // shared class for all bridge (bracket-less) tree edges

	// --- main pass: nodes in reverse preorder (children before parents) --
	for i := n - 1; i >= 0; i-- {
		v := order[i]

		// hi0: highest (smallest dfsnum) destination of backedges from v.
		hi0 := int(^uint(0) >> 1) // maxint
		for _, br := range backsFrom[v] {
			a, b := endA[br.edge], endB[br.edge]
			anc := a
			if b != v {
				anc = b
			}
			// For a backedge with both endpoints v (impossible here since
			// self loops were filtered), anc stays a.
			if dfsnum[anc] < hi0 {
				hi0 = dfsnum[anc]
			}
		}
		// hi1: min hi over children; hi2: second min.
		hi1, hi2 := int(^uint(0)>>1), int(^uint(0)>>1)
		for _, c := range children[v] {
			if hi[c] < hi1 {
				hi1, hi2 = hi[c], hi1
			} else if hi[c] < hi2 {
				hi2 = hi[c]
			}
		}
		if hi0 < hi1 {
			hi[v] = hi0
		} else {
			hi[v] = hi1
		}

		// Build bracket list: concat children, delete brackets ending here,
		// push brackets starting here, maybe push a capping bracket.
		bl := &bracketList{}
		for _, c := range children[v] {
			bl.concat(blist[c])
		}
		blist[v] = bl

		for _, br := range cappingTo[v] {
			bl.delete(br)
		}
		for _, br := range backsTo[v] {
			bl.delete(br)
			if br.class == -1 {
				br.class = newClass()
			}
			classOf[br.edge] = br.class
		}
		for _, br := range backsFrom[v] {
			bl.push(br)
		}
		if hi2 < dfsnum[v] {
			// Two children reach above v: cap with a virtual backedge from
			// v to the node at dfsnum hi2.
			d := &bracket{capping: true, recentSize: -1, class: -1}
			target := order[hi2]
			cappingTo[target] = append(cappingTo[target], d)
			bl.push(d)
		}

		// Assign class to the tree edge (parent(v), v).
		if parent[v] == none {
			continue
		}
		e := parentEdge[v]
		if bl.size == 0 {
			// Bridge edge: on no cycle; all bridges are (vacuously)
			// mutually cycle equivalent.
			if bridgeClass == -1 {
				bridgeClass = newClass()
			}
			classOf[e] = bridgeClass
			continue
		}
		b := bl.head
		if b.recentSize != bl.size {
			b.recentSize = bl.size
			b.recentClass = newClass()
		}
		classOf[e] = b.recentClass
		if b.recentSize == 1 {
			// Tree edge and its sole bracket are cycle equivalent.
			b.class = classOf[e]
		}
	}

	// Self loops: each forms exactly the one cycle consisting of itself, so
	// each is alone in its class.
	for e := 0; e < u.M; e++ {
		if selfLoop[e] {
			classOf[e] = newClass()
		}
	}

	// Any backedge never retired (cannot happen in a connected graph, but
	// keep the invariant that all edges are classified).
	for e := 0; e < u.M; e++ {
		if classOf[e] == -1 {
			if brackets[e] != nil && brackets[e].class != -1 {
				classOf[e] = brackets[e].class
			} else {
				classOf[e] = newClass()
			}
		}
	}
	return classOf, nextClass
}

// sanity check helper exposed for tests.
func validateClasses(classOf []int, numClasses int) error {
	for e, c := range classOf {
		if c < 0 || c >= numClasses {
			return fmt.Errorf("edge %d has invalid class %d (num=%d)", e, c, numClasses)
		}
	}
	return nil
}
