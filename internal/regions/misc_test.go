package regions

import (
	"strings"
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/lang/parser"
)

func TestInfoString(t *testing.T) {
	g := build(t, `read p; if (p > 0) { i := 0; while (i < 5) { i := i + 1; } } print p;`)
	info := MustAnalyze(g)
	s := info.String()
	if !strings.Contains(s, "edge classes") || !strings.Contains(s, "R0:") {
		t.Errorf("unexpected String():\n%s", s)
	}
	// Nested regions indent.
	if !strings.Contains(s, "  R") {
		t.Errorf("expected indented nested region:\n%s", s)
	}
}

func TestInRegion(t *testing.T) {
	g := build(t, "read p; if (p > 0) { x := 1; } else { x := 2; } print x;")
	info := MustAnalyze(g)

	var thenN, printN cfg.NodeID
	for _, nd := range g.Nodes {
		switch {
		case nd.Kind == cfg.KindAssign && nd.Expr.String() == "1":
			thenN = nd.ID
		case nd.Kind == cfg.KindPrint:
			printN = nd.ID
		}
	}
	// Find the region whose boundary is the true branch: then node's class.
	tRegion := -1
	for _, r := range info.Regions {
		if info.G.Edge(r.Entry).Dst == thenN || info.G.Edge(r.Exit).Src == thenN {
			tRegion = r.ID
		}
	}
	if tRegion == -1 {
		t.Skip("no single-statement region for the then branch (bypass structure)")
	}
	if !info.InRegion(thenN, tRegion) {
		t.Errorf("then node should be in region %d", tRegion)
	}
	if info.InRegion(printN, tRegion) {
		t.Errorf("print node should not be in the branch region")
	}
}

func TestValidateClassesHelper(t *testing.T) {
	if err := validateClasses([]int{0, 1, 0}, 2); err != nil {
		t.Errorf("valid classes rejected: %v", err)
	}
	if err := validateClasses([]int{0, 5}, 2); err == nil {
		t.Error("out-of-range class accepted")
	}
	if err := validateClasses([]int{-1}, 2); err == nil {
		t.Error("negative class accepted")
	}
}

func TestAnalyzeEmptyProgram(t *testing.T) {
	g, err := cfg.Build(parser.MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumClasses != 1 || len(info.Regions) != 0 {
		t.Errorf("empty program: %d classes, %d regions", info.NumClasses, len(info.Regions))
	}
}

func TestBasicBlockClassesChains(t *testing.T) {
	g := build(t, "a := 1; b := 2; read p; if (p > 0) { c := 3; d := 4; } print a;")
	classOf, n := BasicBlockClasses(g)
	if n < 3 {
		t.Fatalf("too few basic-block classes: %d", n)
	}
	// Edges around the straight-line prefix share a class.
	var aN, bN cfg.NodeID = cfg.NoNode, cfg.NoNode
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindAssign && nd.Var == "a" {
			aN = nd.ID
		}
		if nd.Kind == cfg.KindAssign && nd.Var == "b" {
			bN = nd.ID
		}
	}
	if classOf[g.InEdges(aN)[0]] != classOf[g.InEdges(bN)[0]] {
		t.Error("prefix chain edges should share a basic-block class")
	}
	// Singleton classes: every edge distinct.
	single, m := SingletonClasses(g)
	if m != len(g.LiveEdges()) {
		t.Fatalf("singleton classes = %d, want %d", m, len(g.LiveEdges()))
	}
	seen := map[int]bool{}
	for _, c := range single {
		if c < 0 {
			continue // dead edge slot
		}
		if seen[c] {
			t.Fatal("duplicate singleton class")
		}
		seen[c] = true
	}
}
