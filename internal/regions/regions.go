package regions

import (
	"fmt"
	"sort"
	"strings"

	"dfg/internal/cfg"
	"dfg/internal/graph"
)

// EdgeClasses computes, for every live edge of g, its control dependence
// equivalence class (Claim 1 + Claim 2 + the bracket-set DFS), in O(E)
// time. Dead edges map to -1. Two edges receive the same class iff they
// have the same control dependence, which by Theorem 1 holds iff each
// dominance-consecutive pair of them bounds a single-entry single-exit
// region.
func EdgeClasses(g *cfg.Graph) (classOf []int, numClasses int) {
	live := g.LiveEdges()
	classOf = newEdgeTable(g)
	if len(live) == 0 {
		return classOf, 0
	}

	// Step 1 (Claim 1): form the strongly connected graph S by taking the
	// split graph (a dummy node per CFG edge) plus dummies' chain for the
	// augmenting edge end→start.
	//
	// S's positional layout:
	//   0..N-1                the CFG nodes
	//   N+i (i = live index)  the dummy node for live edge live[i]
	//   N+len(live)           the dummy node for the end→start edge
	n := g.NumNodes()
	dummyIndex := make(map[cfg.EdgeID]int, len(live))
	for i, e := range live {
		dummyIndex[e] = n + i
	}
	sN := n + len(live) + 1
	endStartDummy := sN - 1

	type dedge struct{ u, v int }
	var sEdges []dedge
	for i, eid := range live {
		e := g.Edge(eid)
		sEdges = append(sEdges,
			dedge{int(e.Src), n + i},
			dedge{n + i, int(e.Dst)})
	}
	sEdges = append(sEdges,
		dedge{int(g.End), endStartDummy},
		dedge{endStartDummy, int(g.Start)})

	// Step 2 (Claim 2): split every node x of S into x_in, x, x_out with
	// directed edges x_in→x→x_out, re-route S's edges u→v as u_out→v_in,
	// then undirect. Layout: x_in = 3x, x = 3x+1, x_out = 3x+2.
	und := graph.NewUndirected(3 * sN)
	inEdgeOf := make([]int, sN) // undirected index of (x_in — x)
	for x := 0; x < sN; x++ {
		inEdgeOf[x] = und.AddEdge(3*x, 3*x+1)
		und.AddEdge(3*x+1, 3*x+2)
	}
	for _, e := range sEdges {
		und.AddEdge(3*e.u+2, 3*e.v)
	}

	// Step 3: undirected cycle equivalence; a CFG edge's class is the class
	// of the (dummy_in — dummy) edge, since the dummy has degree 2 and so
	// node cycle equivalence of dummies equals edge cycle equivalence of
	// their in-halves.
	classes, _ := UndirectedCycleEquiv(und)

	// Renumber densely over the classes that actually label CFG edges.
	renum := map[int]int{}
	for _, eid := range live {
		c := classes[inEdgeOf[dummyIndex[eid]]]
		nc, ok := renum[c]
		if !ok {
			nc = len(renum)
			renum[c] = nc
		}
		classOf[eid] = nc
	}
	return classOf, len(renum)
}

// Region is a canonical single-entry single-exit region: the subgraph
// between Entry and Exit, where Entry dominates Exit, Exit postdominates
// Entry, and the two edges are cycle equivalent (Theorem 1).
type Region struct {
	ID       int
	Entry    cfg.EdgeID
	Exit     cfg.EdgeID
	Parent   int // index of the innermost enclosing region, or -1
	Children []int
	Depth    int // nesting depth; top-level regions have depth 0
}

// Info is the full result of SESE analysis: edge equivalence classes, the
// canonical regions, and the program structure tree (PST) that nests them.
// All per-edge and per-node tables are dense slices indexed by ID, with -1
// marking "no value" (dead edges, nodes outside every region, edges that
// bound no region).
type Info struct {
	G          *cfg.Graph
	ClassOf    []int // per edge ID; -1 for dead edges
	NumClasses int
	Regions    []*Region
	// EdgeRegion maps each live edge to the innermost region that strictly
	// contains it (boundary edges belong to the enclosing region), or -1.
	EdgeRegion []int
	// NodeRegion maps each node to the innermost region containing it, or
	// -1 for nodes outside every region (start, end, top-level spine).
	NodeRegion []int
	// EntryOf maps an edge to the canonical region it is the entry of, and
	// ExitOf to the region it is the exit of (at most one each); -1 means
	// the edge bounds no canonical region on that side.
	EntryOf []int
	ExitOf  []int
}

// newEdgeTable returns a per-edge int table initialized to -1.
func newEdgeTable(g *cfg.Graph) []int {
	t := make([]int, g.NumEdges())
	for i := range t {
		t[i] = -1
	}
	return t
}

// newNodeTable returns a per-node int table initialized to -1.
func newNodeTable(g *cfg.Graph) []int {
	t := make([]int, g.NumNodes())
	for i := range t {
		t[i] = -1
	}
	return t
}

// Analyze computes edge classes, canonical SESE regions, and the PST.
//
// Canonical regions are derived per the paper: within one equivalence
// class, edges are totally ordered by dominance; each consecutive pair is
// the (entry, exit) of a canonical SESE region. Nesting is recovered with a
// single forward propagation of open-region contexts over the CFG.
func Analyze(g *cfg.Graph) (*Info, error) {
	classOf, num := EdgeClasses(g)
	return AnalyzeWithClasses(g, classOf, num)
}

// AnalyzeWithClasses derives regions and the PST from a caller-supplied
// edge partition, which must be *finer than or equal to* control dependence
// equivalence (§3.3 "Region Bypassing": "any equivalence relation on CFG
// edges that is finer than control dependence equivalence can be used to
// construct the DFG"). Finer partitions yield fewer and smaller regions,
// hence less bypassing — see BasicBlockClasses and SingletonClasses.
func AnalyzeWithClasses(g *cfg.Graph, classOf []int, num int) (*Info, error) {
	info := &Info{
		G: g, ClassOf: classOf, NumClasses: num,
		EdgeRegion: newEdgeTable(g),
		NodeRegion: newNodeTable(g),
		EntryOf:    newEdgeTable(g),
		ExitOf:     newEdgeTable(g),
	}

	// Order the members of each class by dominance. In any DFS from start,
	// a dominator is visited before everything it dominates, and class
	// members are totally ordered by dominance, so sorting members by DFS
	// preorder of their dummy (here: preorder of discovery of the edge in a
	// CFG DFS) yields the dominance order.
	pre := g.EdgePreorder()
	byClass := make([][]cfg.EdgeID, num)
	for _, eid := range g.LiveEdges() {
		c := classOf[eid]
		byClass[c] = append(byClass[c], eid)
	}
	for _, members := range byClass {
		sort.Slice(members, func(i, j int) bool { return pre[members[i]] < pre[members[j]] })
	}

	regionWithEntry := info.EntryOf
	regionWithExit := info.ExitOf
	for _, members := range byClass {
		for i := 0; i+1 < len(members); i++ {
			r := &Region{ID: len(info.Regions), Entry: members[i], Exit: members[i+1], Parent: -1}
			info.Regions = append(info.Regions, r)
			regionWithEntry[r.Entry] = r.ID
			regionWithExit[r.Exit] = r.ID
		}
	}

	// Propagate open-region context over the CFG. ctx(node) = innermost
	// region open at that node. Crossing edge e: first close the region
	// whose exit is e, then open the region whose entry is e. Each region
	// is opened exactly once (its entry edge is unique), so context cells
	// are physically shared and contexts are equal iff the head pointers
	// are equal.
	nodeCtx := make([]*ctxCell, g.NumNodes())
	visited := make([]bool, g.NumNodes())
	visited[g.Start] = true
	info.NodeRegion[g.Start] = -1
	queue := []cfg.NodeID{g.Start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.OutEdges(u) {
			e := g.Edge(eid)
			c := nodeCtx[u]
			if rid := regionWithExit[eid]; rid >= 0 {
				if c == nil || c.region != rid {
					return nil, fmt.Errorf("regions: inconsistent nesting closing region %d at edge %d", rid, eid)
				}
				c = c.parent
			}
			// The edge belongs to the region open after closing, before
			// opening (boundary edges belong to the parent of the region
			// they bound; interior edges to the innermost open region).
			if c != nil {
				info.EdgeRegion[eid] = c.region
			} else {
				info.EdgeRegion[eid] = -1
			}
			if rid := regionWithEntry[eid]; rid >= 0 {
				r := info.Regions[rid]
				if c != nil {
					r.Parent = c.region
				} else {
					r.Parent = -1
				}
				c = &ctxCell{region: rid, parent: c}
			}
			v := e.Dst
			if visited[v] {
				if nodeCtx[v] != c {
					return nil, fmt.Errorf("regions: inconsistent context at node %d", v)
				}
				continue
			}
			visited[v] = true
			nodeCtx[v] = c
			if c != nil {
				info.NodeRegion[v] = c.region
			} else {
				info.NodeRegion[v] = -1
			}
			queue = append(queue, v)
		}
	}

	// Parent links → children and depth.
	for _, r := range info.Regions {
		if r.Parent >= 0 {
			info.Regions[r.Parent].Children = append(info.Regions[r.Parent].Children, r.ID)
		}
	}
	var setDepth func(r *Region, d int)
	setDepth = func(r *Region, d int) {
		r.Depth = d
		for _, c := range r.Children {
			setDepth(info.Regions[c], d+1)
		}
	}
	for _, r := range info.Regions {
		if r.Parent == -1 {
			setDepth(r, 0)
		}
	}
	return info, nil
}

// MustAnalyze is Analyze, panicking on error; for fixed test inputs.
func MustAnalyze(g *cfg.Graph) *Info {
	info, err := Analyze(g)
	if err != nil {
		panic(err)
	}
	return info
}

// BasicBlockClasses partitions live edges by basic block: two edges are
// equivalent iff they are separated only by non-branching, non-merging
// computation. This is strictly finer than control dependence equivalence,
// so it is a valid (coarser-bypassing) basis for DFG construction — the
// paper's example of a relation that "will permit bypassing of assignment
// statements but not of control structures".
func BasicBlockClasses(g *cfg.Graph) ([]int, int) {
	classOf := newEdgeTable(g)
	next := 0
	for _, eid := range g.LiveEdges() {
		if classOf[eid] >= 0 {
			continue
		}
		// Walk back to the head of the straight-line chain.
		cur := eid
		for {
			src := g.Edge(cur).Src
			if len(g.InEdges(src)) != 1 || len(g.OutEdges(src)) != 1 {
				break
			}
			cur = g.InEdges(src)[0]
		}
		// Sweep forward, labelling the chain.
		class := next
		next++
		for {
			classOf[cur] = class
			dst := g.Edge(cur).Dst
			if len(g.InEdges(dst)) != 1 || len(g.OutEdges(dst)) != 1 {
				break
			}
			cur = g.OutEdges(dst)[0]
		}
	}
	return classOf, next
}

// SingletonClasses places every live edge in its own class: the finest
// partition, yielding no regions and therefore no bypassing at all — the
// base-level DFG of §3.2 (after dead-edge removal).
func SingletonClasses(g *cfg.Graph) ([]int, int) {
	classOf := newEdgeTable(g)
	live := g.LiveEdges()
	for i, eid := range live {
		classOf[eid] = i
	}
	return classOf, len(live)
}

// ctxCell is one frame of the persistent open-region stack used by Analyze.
type ctxCell struct {
	region int
	parent *ctxCell
}

// InRegion reports whether node n lies inside region r (between its entry
// and exit edges): n's innermost region must be r or a PST descendant of r.
func (info *Info) InRegion(n cfg.NodeID, r int) bool {
	if int(n) >= len(info.NodeRegion) {
		return false
	}
	rid := info.NodeRegion[n]
	for rid != -1 {
		if rid == r {
			return true
		}
		rid = info.Regions[rid].Parent
	}
	return false
}

// String renders the PST with one region per line, indented by depth.
func (info *Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d edge classes, %d canonical regions\n", info.NumClasses, len(info.Regions))
	var walk func(ids []int)
	walk = func(ids []int) {
		for _, id := range ids {
			r := info.Regions[id]
			fmt.Fprintf(&b, "%sR%d: entry e%d, exit e%d\n", strings.Repeat("  ", r.Depth), r.ID, r.Entry, r.Exit)
			walk(r.Children)
		}
	}
	var roots []int
	for _, r := range info.Regions {
		if r.Parent == -1 {
			roots = append(roots, r.ID)
		}
	}
	walk(roots)
	return b.String()
}
