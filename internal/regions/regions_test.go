package regions

import (
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/graph"
	"dfg/internal/lang/parser"
	"dfg/internal/workload"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(parser.MustParse(src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestUndirectedCycleEquivTriangle(t *testing.T) {
	// Triangle: all three edges lie on exactly the same (single) cycle.
	u := graph.NewUndirected(3)
	u.AddEdge(0, 1)
	u.AddEdge(1, 2)
	u.AddEdge(2, 0)
	classes, n := UndirectedCycleEquiv(u)
	if err := validateClasses(classes, n); err != nil {
		t.Fatal(err)
	}
	if classes[0] != classes[1] || classes[1] != classes[2] {
		t.Errorf("triangle edges must share a class: %v", classes)
	}
}

func TestUndirectedCycleEquivTwoTriangles(t *testing.T) {
	// Two triangles sharing node 0: edges of different triangles are not
	// cycle equivalent.
	u := graph.NewUndirected(5)
	a := u.AddEdge(0, 1)
	u.AddEdge(1, 2)
	u.AddEdge(2, 0)
	b := u.AddEdge(0, 3)
	u.AddEdge(3, 4)
	u.AddEdge(4, 0)
	classes, _ := UndirectedCycleEquiv(u)
	if classes[a] == classes[b] {
		t.Errorf("edges of distinct triangles share class: %v", classes)
	}
}

func TestUndirectedCycleEquivBridge(t *testing.T) {
	// Path 0-1-2 plus triangle at 2: the two path edges are bridges and
	// share the bridge class; triangle edges share another class.
	u := graph.NewUndirected(5)
	b0 := u.AddEdge(0, 1)
	b1 := u.AddEdge(1, 2)
	t0 := u.AddEdge(2, 3)
	t1 := u.AddEdge(3, 4)
	t2 := u.AddEdge(4, 2)
	classes, _ := UndirectedCycleEquiv(u)
	if classes[b0] != classes[b1] {
		t.Errorf("bridges must share a class: %v", classes)
	}
	if classes[t0] != classes[t1] || classes[t1] != classes[t2] {
		t.Errorf("triangle edges must share a class: %v", classes)
	}
	if classes[b0] == classes[t0] {
		t.Errorf("bridge and cycle edge must differ: %v", classes)
	}
}

func TestUndirectedCycleEquivParallelEdges(t *testing.T) {
	// Two parallel edges form a 2-cycle; both are cycle equivalent to each
	// other iff every cycle through one contains the other. With a third
	// node hanging off, the parallel pair is its own cycle.
	u := graph.NewUndirected(2)
	p0 := u.AddEdge(0, 1)
	p1 := u.AddEdge(0, 1)
	classes, _ := UndirectedCycleEquiv(u)
	if classes[p0] != classes[p1] {
		t.Errorf("parallel pair must share a class: %v", classes)
	}
}

func TestUndirectedCycleEquivTheta(t *testing.T) {
	// Theta graph: nodes 0,1 joined by three internally disjoint paths of
	// length 2. Every pair of paths forms a cycle, so no two edges of
	// different paths are equivalent, but the two edges of one path are.
	u := graph.NewUndirected(5)
	a0 := u.AddEdge(0, 2)
	a1 := u.AddEdge(2, 1)
	b0 := u.AddEdge(0, 3)
	b1 := u.AddEdge(3, 1)
	c0 := u.AddEdge(0, 4)
	c1 := u.AddEdge(4, 1)
	classes, _ := UndirectedCycleEquiv(u)
	if classes[a0] != classes[a1] || classes[b0] != classes[b1] || classes[c0] != classes[c1] {
		t.Errorf("path halves must pair up: %v", classes)
	}
	if classes[a0] == classes[b0] || classes[b0] == classes[c0] || classes[a0] == classes[c0] {
		t.Errorf("different paths must differ: %v", classes)
	}
}

// --- CFG-level classes vs oracles ------------------------------------------

// checkAgainstOracles verifies the O(E) classes against both the control
// dependence oracle (Claim 1's LHS) and the directed cycle equivalence
// oracle (Claim 1's RHS).
func checkAgainstOracles(t *testing.T, g *cfg.Graph, label string) {
	t.Helper()
	fast, _ := EdgeClasses(g)
	cd := BruteControlDepClasses(g)
	if !SamePartition(fast, cd) {
		t.Errorf("%s: cycle equivalence disagrees with control dependence classes\nfast: %v\ncd:   %v\ncfg:\n%s",
			label, fast, cd, g)
	}
	cyc := BruteCycleEquivClasses(g)
	if !SamePartition(fast, cyc) {
		t.Errorf("%s: fast classes disagree with brute-force directed cycle equivalence\nfast: %v\nbrute:%v\ncfg:\n%s",
			label, fast, cyc, g)
	}
}

func TestEdgeClassesStraightLine(t *testing.T) {
	g := build(t, "x := 1; y := x + 1; print y;")
	classes, n := EdgeClasses(g)
	if n != 1 {
		t.Errorf("straight line should have 1 class, got %d: %v", n, classes)
	}
	checkAgainstOracles(t, g, "straight")
}

func TestEdgeClassesDiamond(t *testing.T) {
	g := build(t, "read p; if (p) { x := 1; } else { x := 2; } print x;")
	classes, n := EdgeClasses(g)
	// Classes: {entry edges + exit edge}, {true branch pair}, {false branch
	// pair}. The true-side edges (switch->assign, assign->merge) share one
	// class; similarly the false side; the spine is one class.
	if n != 3 {
		t.Errorf("diamond should have 3 classes, got %d: %v", n, classes)
	}
	checkAgainstOracles(t, g, "diamond")
}

func TestEdgeClassesLoop(t *testing.T) {
	g := build(t, "i := 0; while (i < 10) { i := i + 1; } print i;")
	checkAgainstOracles(t, g, "loop")
}

func TestEdgeClassesPaperExamples(t *testing.T) {
	// Figure 1 running example: x:=1; if(x=1){y:=2} else {y:=3; ...}; use y
	fig1 := `
		read a;
		x := 1;
		if (x == 1) { y := 2; } else { y := 3; a := y; }
		print y;`
	// Figure 2 example: y:=2; if(p){x:=1;y:=1}else{x:=2}; print x,y
	fig2 := `
		read p;
		y := 2;
		if (p > 0) { x := 1; y := 1; } else { x := 2; }
		print x; print y;`
	// Figure 6-style: straight-line defs + if with computations of x+1
	fig6 := `
		read p; read z;
		x := z + 3;
		if (p > 0) { y := x + 1; } else { z := x + 1; }
		print x + 1;`
	for name, src := range map[string]string{"fig1": fig1, "fig2": fig2, "fig6": fig6} {
		checkAgainstOracles(t, build(t, src), name)
	}
}

func TestEdgeClassesIrreducible(t *testing.T) {
	g := build(t, `
		read p;
		if (p > 0) { goto B; }
		label A:
		x := 1;
		label B:
		x := 2;
		if (x < p) { goto A; }
		print x;`)
	checkAgainstOracles(t, g, "irreducible")
}

func TestEdgeClassesNestedLoops(t *testing.T) {
	g := build(t, `
		i := 0;
		while (i < 3) {
			j := 0;
			while (j < 3) { j := j + 1; }
			i := i + 1;
		}
		print i; print j;`)
	checkAgainstOracles(t, g, "nested-loops")
}

func TestEdgeClassesRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog := workload.Mixed(25, seed)
		g, err := cfg.Build(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAgainstOracles(t, g, "random")
	}
}

func TestEdgeClassesGotoPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := workload.GotoMess(8, seed)
		g, err := cfg.Build(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAgainstOracles(t, g, "goto")
	}
}

// --- SESE regions & PST -----------------------------------------------------

func TestAnalyzeDiamondRegions(t *testing.T) {
	g := build(t, "read p; if (p) { x := 1; } else { x := 2; } print x;")
	info := MustAnalyze(g)
	dom := cfg.NewDominance(g)
	for _, r := range info.Regions {
		if !dom.EdgeDominatesEdge(r.Entry, r.Exit) {
			t.Errorf("region %d: entry e%d does not dominate exit e%d", r.ID, r.Entry, r.Exit)
		}
		if !dom.EdgePostdominatesEdge(r.Exit, r.Entry) {
			t.Errorf("region %d: exit e%d does not postdominate entry e%d", r.ID, r.Exit, r.Entry)
		}
	}
}

// checkRegionInvariants verifies Theorem 1 on every canonical region and
// that the PST parent relation is consistent with containment.
func checkRegionInvariants(t *testing.T, g *cfg.Graph, label string) {
	t.Helper()
	info, err := Analyze(g)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	dom := cfg.NewDominance(g)
	onCycle := g.EdgesOnSomeCycle()
	for _, r := range info.Regions {
		if !dom.EdgeDominatesEdge(r.Entry, r.Exit) {
			t.Errorf("%s R%d: entry must dominate exit", label, r.ID)
		}
		if !dom.EdgePostdominatesEdge(r.Exit, r.Entry) {
			t.Errorf("%s R%d: exit must postdominate entry", label, r.ID)
		}
		// Theorem 1 third condition restricted to a quick necessary check:
		// entry on a cycle iff exit on a cycle.
		if onCycle[r.Entry] != onCycle[r.Exit] {
			t.Errorf("%s R%d: cycle membership differs between entry and exit", label, r.ID)
		}
		// Parent containment: parent's entry dominates child's entry and
		// parent's exit postdominates child's exit.
		if r.Parent >= 0 {
			p := info.Regions[r.Parent]
			if !dom.EdgeDominatesEdge(p.Entry, r.Entry) {
				t.Errorf("%s R%d: parent entry does not dominate child entry", label, r.ID)
			}
			if !dom.EdgePostdominatesEdge(p.Exit, r.Exit) {
				t.Errorf("%s R%d: parent exit does not postdominate child exit", label, r.ID)
			}
		}
	}
}

func TestRegionInvariantsRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := cfg.Build(workload.Mixed(30, seed))
		if err != nil {
			t.Fatal(err)
		}
		checkRegionInvariants(t, g, "mixed")
	}
	for seed := int64(0); seed < 10; seed++ {
		g, err := cfg.Build(workload.GotoMess(7, seed))
		if err != nil {
			t.Fatal(err)
		}
		checkRegionInvariants(t, g, "goto")
	}
}

func TestRegionNesting(t *testing.T) {
	// A loop inside an if: the loop's regions nest inside the branch region.
	g := build(t, `
		read p;
		if (p > 0) {
			i := 0;
			while (i < 5) { i := i + 1; }
		}
		print p;`)
	info := MustAnalyze(g)
	maxDepth := 0
	for _, r := range info.Regions {
		if r.Depth > maxDepth {
			maxDepth = r.Depth
		}
	}
	if maxDepth < 1 {
		t.Errorf("expected nested regions, PST:\n%s", info)
	}
}

func TestStraightLineRegionChain(t *testing.T) {
	// n sequential statements: one class of n+1 edges, n canonical regions,
	// all siblings (sequential composition, not nesting).
	g := build(t, "a := 1; b := 2; c := 3; print c;")
	info := MustAnalyze(g)
	if info.NumClasses != 1 {
		t.Fatalf("classes = %d, want 1", info.NumClasses)
	}
	if len(info.Regions) != len(g.LiveEdges())-1 {
		t.Errorf("regions = %d, want %d", len(info.Regions), len(g.LiveEdges())-1)
	}
	for _, r := range info.Regions {
		if r.Depth != 0 {
			t.Errorf("region %d depth = %d, want 0 (sequential)", r.ID, r.Depth)
		}
	}
}

func BenchmarkEdgeClasses(b *testing.B) {
	g, err := cfg.Build(workload.StraightLine(2000, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeClasses(g)
	}
}
