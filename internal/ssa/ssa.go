// Package ssa builds static single assignment form two ways and proves
// them equivalent:
//
//   - Cytron: the classic construction (Cytron, Ferrante, Rosen, Wegman &
//     Zadeck) — φ placement at iterated dominance frontiers of definition
//     sites, then renaming along the dominator tree. This is the baseline.
//
//   - FromDFG: the paper's §3.3 construction — "if the SSA representation
//     of a program is desired, we can construct it in O(EV) time by first
//     building the DFG representation and then eliding switches and
//     converting merges to φ-functions. Unlike the standard algorithm, our
//     algorithm does not require computation of the dominance relation or
//     dominance frontiers."
//
// Both produce the same Form: a map from every use site to its unique
// reaching SSA value, plus φ-functions at merge nodes with one argument per
// incoming CFG edge. Cytron's result is minimal SSA; the DFG-derived form
// is pruned (dead φs removed by the DFG's dead-edge removal), so
// equivalence is checked on the value graph reachable from real uses —
// where minimal and pruned SSA provably coincide.
package ssa

import (
	"fmt"
	"sort"
	"strings"

	"dfg/internal/cfg"
	"dfg/internal/dfg"
	"dfg/internal/graph"
)

// ValueKind discriminates SSA values.
type ValueKind int

// Value kinds.
const (
	ValInit ValueKind = iota // implicit definition at start (uninitialized)
	ValDef                   // an assign/read node's definition
	ValPhi                   // a φ-function at a merge node
)

// String returns the kind name.
func (k ValueKind) String() string {
	switch k {
	case ValInit:
		return "init"
	case ValDef:
		return "def"
	case ValPhi:
		return "phi"
	}
	return fmt.Sprintf("ValueKind(%d)", int(k))
}

// Value is an SSA value: where a variable's current version was born.
type Value struct {
	Kind ValueKind
	Node cfg.NodeID // def node, φ's merge node, or start for init
	Var  string
}

// String renders the value.
func (v Value) String() string {
	return fmt.Sprintf("%s(%s@n%d)", v.Kind, v.Var, v.Node)
}

// PhiKey identifies a φ-function.
type PhiKey struct {
	Node cfg.NodeID
	Var  string
}

// Phi is a φ-function with one argument per incoming CFG edge.
type Phi struct {
	Node cfg.NodeID
	Var  string
	Args map[cfg.EdgeID]Value
}

// UseKey identifies a variable use site.
type UseKey struct {
	Node cfg.NodeID
	Var  string
}

// Form is an SSA program form over a CFG.
type Form struct {
	G      *cfg.Graph
	Phis   map[PhiKey]*Phi
	UseDef map[UseKey]Value
}

// NumPhis returns the number of φ-functions (one of E9/E10's size metrics).
func (f *Form) NumPhis() int { return len(f.Phis) }

// Size returns the SSA edge count: one edge per use plus one per φ
// argument. This is the O(EV) quantity of §2.3.
func (f *Form) Size() int {
	n := len(f.UseDef)
	for _, p := range f.Phis {
		n += len(p.Args)
	}
	return n
}

// ---------------------------------------------------------------------------
// Cytron et al. baseline

// Cytron builds minimal SSA with the standard two-phase algorithm.
func Cytron(g *cfg.Graph) *Form {
	f := &Form{G: g, Phis: map[PhiKey]*Phi{}, UseDef: map[UseKey]Value{}}

	pos := g.Positional()
	idom := graph.Dominators(pos, int(g.Start))
	df := graph.DominanceFrontiers(pos, idom)

	// Dominator tree children.
	children := make([][]int, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		if idom[n] != -1 && idom[n] != n {
			children[idom[n]] = append(children[idom[n]], n)
		}
	}

	// Phase 1: φ placement at iterated dominance frontiers. Every variable
	// has an implicit definition at start (so one def site is always
	// present and uses before any real def resolve to init).
	for _, v := range g.VarNames {
		var work []int
		inWork := make([]bool, g.NumNodes())
		hasPhi := make([]bool, g.NumNodes())
		push := func(n int) {
			if !inWork[n] {
				inWork[n] = true
				work = append(work, n)
			}
		}
		push(int(g.Start))
		for _, nd := range g.Nodes {
			if g.Defs(nd.ID) == v {
				push(int(nd.ID))
			}
		}
		for len(work) > 0 {
			n := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[n] {
				if !hasPhi[y] {
					hasPhi[y] = true
					key := PhiKey{cfg.NodeID(y), v}
					f.Phis[key] = &Phi{Node: cfg.NodeID(y), Var: v, Args: map[cfg.EdgeID]Value{}}
					push(y)
				}
			}
		}
	}

	// Phase 2: renaming along the dominator tree.
	stacks := map[string][]Value{}
	for _, v := range g.VarNames {
		stacks[v] = []Value{{Kind: ValInit, Node: g.Start, Var: v}}
	}
	top := func(v string) Value { s := stacks[v]; return s[len(s)-1] }

	var rename func(n int)
	rename = func(n int) {
		id := cfg.NodeID(n)
		pushed := map[string]int{}

		// φs at this node define new versions before any use in the node.
		for _, v := range g.VarNames {
			if _, ok := f.Phis[PhiKey{id, v}]; ok {
				stacks[v] = append(stacks[v], Value{Kind: ValPhi, Node: id, Var: v})
				pushed[v]++
			}
		}
		// Uses at this node see the current versions.
		for _, v := range g.Uses(id) {
			f.UseDef[UseKey{id, v}] = top(v)
		}
		// A definition at this node pushes a new version.
		if v := g.Defs(id); v != "" {
			stacks[v] = append(stacks[v], Value{Kind: ValDef, Node: id, Var: v})
			pushed[v]++
		}
		// Fill φ arguments of successors for the edges out of this node.
		for _, eid := range g.OutEdges(id) {
			succ := g.Edge(eid).Dst
			for _, v := range g.VarNames {
				if phi, ok := f.Phis[PhiKey{succ, v}]; ok {
					phi.Args[eid] = top(v)
				}
			}
		}
		for _, c := range children[n] {
			rename(c)
		}
		for v, k := range pushed {
			stacks[v] = stacks[v][:len(stacks[v])-k]
		}
	}
	rename(int(g.Start))
	return f
}

// ---------------------------------------------------------------------------
// DFG-derived SSA (§3.3)

// FromDFG derives SSA from a dependence flow graph by eliding switch
// operators and converting merge operators to φ-functions. No dominance
// information is used.
func FromDFG(d *dfg.Graph) *Form {
	f := &Form{G: d.G, Phis: map[PhiKey]*Phi{}, UseDef: map[UseKey]Value{}}

	// resolve follows a dependence source through (elided) switch operators
	// to the def, init, or merge that produced it.
	var resolve func(s dfg.Src) Value
	memo := map[dfg.Src]Value{}
	resolve = func(s dfg.Src) Value {
		if v, ok := memo[s]; ok {
			return v
		}
		op := d.Ops[s.Op]
		var val Value
		switch op.Kind {
		case dfg.OpInit:
			val = Value{Kind: ValInit, Node: d.G.Start, Var: op.Var}
		case dfg.OpDef:
			val = Value{Kind: ValDef, Node: op.Node, Var: op.Var}
		case dfg.OpMerge:
			val = Value{Kind: ValPhi, Node: op.Node, Var: op.Var}
		case dfg.OpSwitch:
			val = resolve(op.In[0]) // elide
		}
		memo[s] = val
		return val
	}

	// Materialize φs from merge operators (reachable ones only: the DFG is
	// pruned, so this yields pruned SSA).
	for _, op := range d.Ops {
		if op.Kind != dfg.OpMerge || op.Var == dfg.CtlVar || !op.LiveOut[0] {
			continue
		}
		phi := &Phi{Node: op.Node, Var: op.Var, Args: map[cfg.EdgeID]Value{}}
		for i, in := range op.In {
			phi.Args[op.InEdges[i]] = resolve(in)
		}
		f.Phis[PhiKey{op.Node, op.Var}] = phi
	}

	// The DFG intercepts dependences at merges whenever a region merely
	// *uses* a variable, so some merge operators are trivial as
	// φ-functions: φ(v, …, v, φ_self) ≡ v. Minimal SSA has no such φs;
	// eliminate them by fixpoint (the standard trivial-φ rule).
	canon := map[PhiKey]Value{}
	for k := range f.Phis {
		canon[k] = Value{Kind: ValPhi, Node: k.Node, Var: k.Var}
	}
	var canonical func(v Value) Value
	canonical = func(v Value) Value {
		for v.Kind == ValPhi {
			c := canon[PhiKey{v.Node, v.Var}]
			if c == v {
				return v
			}
			v = c
		}
		return v
	}
	for changed := true; changed; {
		changed = false
		for k, phi := range f.Phis {
			self := canon[k]
			if self.Kind != ValPhi || self.Node != k.Node {
				continue // already resolved away
			}
			var uniq Value
			trivial := true
			seen := false
			for _, a := range phi.Args {
				ca := canonical(a)
				if ca == self {
					continue // self-reference through the loop
				}
				if !seen {
					uniq, seen = ca, true
				} else if ca != uniq {
					trivial = false
					break
				}
			}
			if trivial && seen {
				canon[k] = uniq
				changed = true
			}
		}
	}

	// On irreducible graphs, *webs* of mutually-referencing φs can be
	// collectively trivial even though no single φ is: a strongly
	// connected set of φs whose only external input is one value v is
	// equivalent to v (the redundant-φ-web rule of Braun et al.). The
	// simple fixpoint above cannot see this, so collapse φ-SCCs
	// explicitly, innermost first.
	collapsePhiWebs(f, canon, canonical)

	// Emit the surviving φs with canonicalized arguments, and uses mapped
	// through the canonical values.
	phis := map[PhiKey]*Phi{}
	for k, phi := range f.Phis {
		if canonical(Value{Kind: ValPhi, Node: k.Node, Var: k.Var}) != (Value{Kind: ValPhi, Node: k.Node, Var: k.Var}) {
			continue // eliminated as trivial
		}
		np := &Phi{Node: phi.Node, Var: phi.Var, Args: map[cfg.EdgeID]Value{}}
		for e, a := range phi.Args {
			np.Args[e] = canonical(a)
		}
		phis[k] = np
	}
	f.Phis = phis

	for _, u := range d.Uses {
		if u.Var == dfg.CtlVar {
			continue
		}
		f.UseDef[UseKey{u.Node, u.Var}] = canonical(resolve(u.Src))
	}
	return f
}

// collapsePhiWebs resolves strongly connected components of φ-functions
// whose arguments, outside the component, are all one value: the whole web
// canonicalizes to that value. Components are processed in dependency
// order (arguments before the φs that use them), so chained webs collapse
// in one pass.
func collapsePhiWebs(f *Form, canon map[PhiKey]Value, canonical func(Value) Value) {
	// Index the φs still canonical to themselves.
	var keys []PhiKey
	idx := map[PhiKey]int{}
	for k := range f.Phis {
		self := Value{Kind: ValPhi, Node: k.Node, Var: k.Var}
		if canonical(self) == self {
			idx[k] = len(keys)
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	// Argument graph among live φs.
	d := graph.NewDirected(len(keys))
	for _, k := range keys {
		for _, a := range f.Phis[k].Args {
			ca := canonical(a)
			if ca.Kind == ValPhi {
				if j, ok := idx[PhiKey{ca.Node, ca.Var}]; ok {
					d.AddEdge(idx[k], j)
				}
			}
		}
	}
	comp, n := graph.SCC(d)
	members := make([][]int, n)
	for i, c := range comp {
		members[c] = append(members[c], i)
	}
	// SCC numbering has successors (arguments) in lower-numbered
	// components; process them first.
	for c := 0; c < n; c++ {
		inSCC := map[PhiKey]bool{}
		for _, i := range members[c] {
			inSCC[keys[i]] = true
		}
		var external Value
		seen, uniform := false, true
		for _, i := range members[c] {
			for _, a := range f.Phis[keys[i]].Args {
				ca := canonical(a)
				if ca.Kind == ValPhi && inSCC[PhiKey{ca.Node, ca.Var}] {
					continue // internal reference
				}
				if !seen {
					external, seen = ca, true
				} else if ca != external {
					uniform = false
				}
			}
		}
		if seen && uniform {
			for _, i := range members[c] {
				canon[keys[i]] = external
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Equivalence

// EquivalentOnUses reports whether two SSA forms resolve every real use to
// the same value graph: identical use→value mapping, and for every φ
// reachable from a use (transitively), identical arguments. Unreachable
// (dead) φs are ignored, which makes minimal and pruned SSA comparable.
// A non-nil error describes the first difference.
func EquivalentOnUses(a, b *Form) error {
	if len(a.UseDef) != len(b.UseDef) {
		return fmt.Errorf("ssa: use counts differ: %d vs %d", len(a.UseDef), len(b.UseDef))
	}
	var queue []PhiKey
	seen := map[PhiKey]bool{}
	enqueue := func(v Value) {
		if v.Kind == ValPhi {
			k := PhiKey{v.Node, v.Var}
			if !seen[k] {
				seen[k] = true
				queue = append(queue, k)
			}
		}
	}
	for k, va := range a.UseDef {
		vb, ok := b.UseDef[k]
		if !ok {
			return fmt.Errorf("ssa: use %v missing in second form", k)
		}
		if va != vb {
			return fmt.Errorf("ssa: use %v resolves to %v vs %v", k, va, vb)
		}
		enqueue(va)
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		pa, oka := a.Phis[k]
		pb, okb := b.Phis[k]
		if !oka || !okb {
			return fmt.Errorf("ssa: φ %v present=%v/%v", k, oka, okb)
		}
		if len(pa.Args) != len(pb.Args) {
			return fmt.Errorf("ssa: φ %v arg counts differ: %d vs %d", k, len(pa.Args), len(pb.Args))
		}
		for e, va := range pa.Args {
			vb, ok := pb.Args[e]
			if !ok {
				return fmt.Errorf("ssa: φ %v missing arg for edge e%d", k, e)
			}
			if va != vb {
				return fmt.Errorf("ssa: φ %v arg e%d: %v vs %v", k, e, va, vb)
			}
			enqueue(va)
		}
	}
	return nil
}

// String renders the SSA form: φs then use→def bindings, sorted.
func (f *Form) String() string {
	var b strings.Builder
	var phiKeys []PhiKey
	for k := range f.Phis {
		phiKeys = append(phiKeys, k)
	}
	sort.Slice(phiKeys, func(i, j int) bool {
		if phiKeys[i].Node != phiKeys[j].Node {
			return phiKeys[i].Node < phiKeys[j].Node
		}
		return phiKeys[i].Var < phiKeys[j].Var
	})
	for _, k := range phiKeys {
		phi := f.Phis[k]
		var es []cfg.EdgeID
		for e := range phi.Args {
			es = append(es, e)
		}
		sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
		parts := make([]string, len(es))
		for i, e := range es {
			parts[i] = fmt.Sprintf("e%d:%s", e, phi.Args[e])
		}
		fmt.Fprintf(&b, "phi %s @n%d = φ(%s)\n", k.Var, k.Node, strings.Join(parts, ", "))
	}
	var useKeys []UseKey
	for k := range f.UseDef {
		useKeys = append(useKeys, k)
	}
	sort.Slice(useKeys, func(i, j int) bool {
		if useKeys[i].Node != useKeys[j].Node {
			return useKeys[i].Node < useKeys[j].Node
		}
		return useKeys[i].Var < useKeys[j].Var
	})
	for _, k := range useKeys {
		fmt.Fprintf(&b, "use %s @n%d <- %s\n", k.Var, k.Node, f.UseDef[k])
	}
	return b.String()
}
