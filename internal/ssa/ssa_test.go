package ssa

import (
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/dfg"
	"dfg/internal/lang/parser"
	"dfg/internal/workload"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(parser.MustParse(src))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestCytronStraightLine(t *testing.T) {
	g := build(t, "x := 1; y := x; x := 2; z := x;")
	f := Cytron(g)
	if f.NumPhis() != 0 {
		t.Errorf("straight line has %d φs, want 0", f.NumPhis())
	}
	// Each use resolves to the def just above it.
	for k, v := range f.UseDef {
		if v.Kind != ValDef {
			t.Errorf("use %v resolves to %v, want a def", k, v)
		}
	}
}

func TestCytronDiamondPhi(t *testing.T) {
	g := build(t, "read p; if (p) { x := 1; } else { x := 2; } y := x;")
	f := Cytron(g)
	var mg cfg.NodeID
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindMerge {
			mg = nd.ID
		}
	}
	phi, ok := f.Phis[PhiKey{mg, "x"}]
	if !ok {
		t.Fatalf("no φ for x at merge; φs: %v", f.Phis)
	}
	if len(phi.Args) != 2 {
		t.Errorf("φ args = %v, want 2", phi.Args)
	}
	for _, v := range phi.Args {
		if v.Kind != ValDef || v.Var != "x" {
			t.Errorf("φ arg %v, want x defs", v)
		}
	}
	// The use of x at y := x sees the φ.
	for k, v := range f.UseDef {
		if k.Var == "x" {
			if v.Kind != ValPhi || v.Node != mg {
				t.Errorf("use %v resolves to %v, want the φ", k, v)
			}
		}
	}
}

func TestCytronLoopPhi(t *testing.T) {
	g := build(t, "i := 0; while (i < 10) { i := i + 1; } print i;")
	f := Cytron(g)
	var hdr cfg.NodeID
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindMerge {
			hdr = nd.ID
		}
	}
	phi, ok := f.Phis[PhiKey{hdr, "i"}]
	if !ok {
		t.Fatal("no φ for i at loop header")
	}
	if len(phi.Args) != 2 {
		t.Errorf("loop φ args = %v, want 2", phi.Args)
	}
	// The body use of i sees the φ; so does the condition.
	for k, v := range f.UseDef {
		if k.Var == "i" && v.Kind == ValInit {
			t.Errorf("use %v resolves to init, want φ or def", k)
		}
	}
}

func TestUseBeforeDefResolvesToInit(t *testing.T) {
	g := build(t, "print x; x := 1; print x;")
	f := Cytron(g)
	inits, defs := 0, 0
	for _, v := range f.UseDef {
		switch v.Kind {
		case ValInit:
			inits++
		case ValDef:
			defs++
		}
	}
	if inits != 1 || defs != 1 {
		t.Errorf("inits=%d defs=%d, want 1/1", inits, defs)
	}
}

func equivalentForms(t *testing.T, g *cfg.Graph, label string) {
	t.Helper()
	base := Cytron(g)
	d, err := dfg.Build(g)
	if err != nil {
		t.Fatalf("%s: dfg: %v", label, err)
	}
	derived := FromDFG(d)
	if err := EquivalentOnUses(base, derived); err != nil {
		t.Errorf("%s: Cytron and DFG-derived SSA differ: %v\ncytron:\n%s\ndfg-derived:\n%s\ncfg:\n%s",
			label, err, base, derived, g)
	}
}

func TestFromDFGMatchesCytronExamples(t *testing.T) {
	srcs := []string{
		"x := 1; y := x; x := 2; z := x;",
		"read p; if (p) { x := 1; } else { x := 2; } y := x;",
		"i := 0; while (i < 10) { i := i + 1; } print i;",
		"print x; x := 1; print x;",
		`read a; x := 1; if (x == 1) { y := 2; } else { y := 3; a := y; } print y; print a;`,
		`read p; y := 2; if (p > 0) { x := 1; y := 1; } else { x := 2; } print x; print y;`,
		`read p; if (p > 0) { i := 0; while (i < 5) { i := i + p; } print i; } print p;`,
		`read n; i := 0; s := 0; while (i < n) { j := 0; while (j < i) { s := s + j; j := j + 1; } i := i + 1; } print s;`,
	}
	for _, src := range srcs {
		equivalentForms(t, build(t, src), src)
	}
}

func TestFromDFGMatchesCytronRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, err := cfg.Build(workload.Mixed(35, seed))
		if err != nil {
			t.Fatal(err)
		}
		equivalentForms(t, g, "mixed")
	}
}

func TestFromDFGMatchesCytronGoto(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, err := cfg.Build(workload.GotoMess(8, seed))
		if err != nil {
			t.Fatal(err)
		}
		equivalentForms(t, g, "goto")
	}
}

func TestIrreduciblePhiWebCollapses(t *testing.T) {
	// p is read once and used inside an irreducible loop entered at two
	// points. The DFG intercepts p at both entry merges, producing a web
	// of mutually-referencing φs whose only external input is the read —
	// the φ-SCC rule must collapse it so uses resolve to the def directly,
	// as in minimal SSA.
	g := build(t, `
		read p;
		if (p > 0) { goto B; }
		label A:
		x := 1;
		label B:
		x := x + 1;
		if (x < p) { goto A; }
		print x;`)
	equivalentForms(t, g, "irreducible-phi-web")

	d, err := dfg.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	derived := FromDFG(d)
	for k := range derived.Phis {
		if k.Var == "p" {
			t.Errorf("trivial φ web for p survived at n%d", k.Node)
		}
	}
}

func TestPrunedVsMinimalPhiCounts(t *testing.T) {
	// A dead φ: x merges but is never used afterwards. Minimal SSA places
	// it; the DFG-derived (pruned) form must not.
	g := build(t, "read p; if (p) { x := 1; } else { x := 2; } print p;")
	minimal := Cytron(g)
	d, err := dfg.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	pruned := FromDFG(d)
	if minimal.NumPhis() == 0 {
		t.Fatal("expected a (dead) φ in minimal SSA")
	}
	if pruned.NumPhis() != 0 {
		t.Errorf("pruned SSA has %d φs, want 0 (x never used)", pruned.NumPhis())
	}
	// They are still equivalent on uses.
	if err := EquivalentOnUses(minimal, pruned); err != nil {
		t.Errorf("forms differ on uses: %v", err)
	}
}

func TestSizeLinearOnDiamondLadder(t *testing.T) {
	// SSA size must grow linearly in the ladder length (contrast with
	// def-use chains, which grow quadratically — experiment E10).
	size := func(k int) int {
		g, err := cfg.Build(workload.DiamondLadder(k, 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		return Cytron(g).Size()
	}
	s4, s8, s16 := size(4), size(8), size(16)
	// Ratios should be roughly 2x (allow slack for boundary effects).
	if s8 > 3*s4 || s16 > 3*s8 {
		t.Errorf("SSA size growing super-linearly: %d, %d, %d", s4, s8, s16)
	}
}

func TestStringOutput(t *testing.T) {
	g := build(t, "read p; if (p) { x := 1; } else { x := 2; } y := x;")
	if s := Cytron(g).String(); s == "" {
		t.Error("empty String()")
	}
}
