// Package store is a persistent, content-addressed artifact store: the
// durable tier behind the pipeline engine's in-memory LRU. Keys are logical
// content addresses (sha256 of the program source plus the options
// fingerprint, stage set, and report schema version — the engine composes
// them); values are opaque byte payloads (in practice the pipeline's
// deterministic Report JSON).
//
// On-disk layout (the bucket style of turbo-geth's dbutils, flattened onto
// a filesystem):
//
//	root/
//	  VERSION            schema-version marker, one decimal integer
//	  ab/cd/abcd…ef.art  artifact files, bucketed by the first two byte
//	                     pairs of sha256(logical key)
//
// Each artifact file is self-describing and self-checking:
//
//	line 1: magic  "dfgstore1"
//	line 2: JSON header {"key","schema","payload_sha256","payload_len"}
//	rest:   payload bytes, exactly payload_len of them
//
// Get re-verifies the header key (hash-collision paranoia), the payload
// length, and the payload checksum; any mismatch — a truncated write that
// survived a crash, a flipped bit, a foreign file — is reported as a miss
// (plus a corruption counter tick and best-effort removal), never an error
// the caller must handle and never a panic. Writes are crash-safe: payload
// goes to a temp file in the same bucket directory, is fsync'd, renamed
// over the final name, and the directory is fsync'd, so a crash leaves
// either the old artifact or the new one, not a torn file.
//
// Schema migrations happen at Open time: when the VERSION marker on disk
// differs from Options.Schema, the Migrate hook runs (the default hook
// purges every artifact — entries of another schema are unreachable anyway,
// because the schema version is part of every logical key; purging merely
// reclaims the space), then the marker is rewritten. The hook exists so a
// future schema change can rewrite artifacts in place instead.
//
// The store bounds its own footprint. Open sweeps *.tmp files orphaned by a
// crash between create and rename (older than a grace period, so a live
// writer sharing the directory is never raced). With Options.MaxBytes set,
// Put triggers GC once the artifact bytes on disk exceed the bound: the
// bucket layout makes the scan cheap (two fixed directory levels, no
// recursion surprises), eviction is oldest-access-first using each file's
// mtime as the access clock (Get touches the file on a hit), and GC stops
// at a low-water mark below the bound so evictions run in batches instead
// of on every Put. Eviction can race Get — a file removed mid-read simply
// reads as a miss — so GC never compromises correctness, only hit rate.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	magic       = "dfgstore1"
	artSuffix   = ".art"
	tmpPrefix   = "tmp-"
	versionFile = "VERSION"

	// staleTmpAge is how old a tmp file must be before the Open-time sweep
	// treats it as a crash orphan rather than an in-progress write from a
	// process sharing the directory.
	staleTmpAge = time.Hour

	// gcLowWater is the fraction of MaxBytes GC compacts down to, so
	// evictions run in batches instead of thrashing on every Put at the
	// boundary.
	gcLowWater = 0.9
)

// Options configure Open. Schema is required (>= 1).
type Options struct {
	// Schema is the artifact schema version the opening process speaks.
	// It participates in every logical key and is checked against the
	// on-disk VERSION marker.
	Schema int

	// Migrate runs when the on-disk schema differs from Schema, before the
	// marker is rewritten. from is 0 for a brand-new (or pre-versioning)
	// directory. nil means PurgeMigration.
	Migrate func(s *Store, from, to int) error

	// NoSync disables fsync on writes. Tests and benchmarks only; a real
	// deployment wants the crash-safety fsync buys.
	NoSync bool

	// MaxBytes bounds the artifact bytes kept on disk; Put triggers an
	// oldest-access-first GC pass once the bound is exceeded. <=0 means
	// unbounded (no GC).
	MaxBytes int64
}

// PurgeMigration is the default migration hook: it deletes every artifact
// file. Old-schema entries are unreachable regardless (the schema version is
// folded into each key); purging reclaims their disk space. The from/to
// versions are deliberately unused — a purge is version-oblivious — but the
// signature matches Options.Migrate so it can be assigned directly.
func PurgeMigration(s *Store, _, _ int) error { return s.Purge() }

// Store is a handle on one artifact directory. It is safe for concurrent
// use by multiple goroutines and — thanks to atomic rename — by multiple
// processes sharing the directory.
type Store struct {
	root     string
	schema   int
	noSync   bool
	maxBytes int64

	hits         atomic.Int64
	misses       atomic.Int64
	writes       atomic.Int64
	corrupt      atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// diskBytes approximates the artifact bytes on disk: seeded by the
	// Open-time scan, adjusted on Put/removal, and resynced to ground truth
	// by every GC walk (so drift from racing processes self-heals).
	diskBytes    atomic.Int64
	gcRuns       atomic.Int64
	evictedFiles atomic.Int64
	evictedBytes atomic.Int64
	tmpSwept     atomic.Int64

	gcMu sync.Mutex // at most one GC walk at a time; Put skips, not blocks
}

// Open opens (creating if necessary) the store rooted at dir and runs the
// schema-migration hook if the on-disk version differs from opts.Schema.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Schema < 1 {
		return nil, fmt.Errorf("store: schema version must be >= 1, got %d", opts.Schema)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir, schema: opts.Schema, noSync: opts.NoSync, maxBytes: opts.MaxBytes}
	s.sweepAndMeasure()
	onDisk, err := s.readVersion()
	if err != nil {
		return nil, err
	}
	if onDisk != opts.Schema {
		migrate := opts.Migrate
		if migrate == nil {
			migrate = PurgeMigration
		}
		if err := migrate(s, onDisk, opts.Schema); err != nil {
			return nil, fmt.Errorf("store: migrate %d -> %d: %w", onDisk, opts.Schema, err)
		}
		if err := s.writeVersion(opts.Schema); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// Schema returns the schema version the store was opened with.
func (s *Store) Schema() int { return s.schema }

func (s *Store) readVersion() (int, error) {
	b, err := os.ReadFile(filepath.Join(s.root, versionFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: read version: %w", err)
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return 0, fmt.Errorf("store: malformed version marker %q", strings.TrimSpace(string(b)))
	}
	return v, nil
}

func (s *Store) writeVersion(v int) error {
	return s.writeAtomic(filepath.Join(s.root, versionFile), []byte(strconv.Itoa(v)+"\n"))
}

// sweepAndMeasure is the Open-time housekeeping walk: it removes *.tmp
// files orphaned by a crash between create and rename (older than
// staleTmpAge, so an in-progress writer in another process is never raced)
// and seeds the artifact-byte count GC works against.
func (s *Store) sweepAndMeasure() {
	var artBytes int64
	cutoff := time.Now().Add(-staleTmpAge)
	filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, artSuffix):
			if info, err := d.Info(); err == nil {
				artBytes += info.Size()
			}
		case strings.HasPrefix(d.Name(), tmpPrefix):
			if info, err := d.Info(); err == nil && info.ModTime().Before(cutoff) {
				if os.Remove(path) == nil {
					s.tmpSwept.Add(1)
				}
			}
		}
		return nil
	})
	s.diskBytes.Store(artBytes)
}

// path maps a logical key to its artifact file: two levels of 256-way
// buckets keyed by the sha256 of the key, so directories stay small however
// many artifacts accumulate.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.root, name[:2], name[2:4], name+artSuffix)
}

// header is the self-describing artifact preamble, one JSON line.
type header struct {
	Key        string `json:"key"`
	Schema     int    `json:"schema"`
	PayloadSHA string `json:"payload_sha256"`
	PayloadLen int    `json:"payload_len"`
}

// Put stores payload under key, atomically replacing any previous value.
func (s *Store) Put(key string, payload []byte) error {
	h := header{
		Key:        key,
		Schema:     s.schema,
		PayloadSHA: payloadSum(payload),
		PayloadLen: len(payload),
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("store: marshal header: %w", err)
	}
	buf := make([]byte, 0, len(magic)+1+len(hb)+1+len(payload))
	buf = append(buf, magic...)
	buf = append(buf, '\n')
	buf = append(buf, hb...)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	if err := s.writeAtomic(s.path(key), buf); err != nil {
		return err
	}
	s.writes.Add(1)
	s.bytesWritten.Add(int64(len(buf)))
	if n := s.diskBytes.Add(int64(len(buf))); s.maxBytes > 0 && n > s.maxBytes {
		s.gc()
	}
	return nil
}

// Get returns the payload stored under key. ok is false on a miss — which
// includes any artifact that fails validation: corruption is counted,
// the bad file is best-effort removed, and the caller simply recomputes.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	path := s.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err = decode(b, key, s.schema)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		if os.Remove(path) == nil { // drop the bad artifact so the slot heals on rewrite
			s.diskBytes.Add(-int64(len(b)))
		}
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(int64(len(b)))
	if s.maxBytes > 0 {
		// mtime doubles as the access clock GC evicts by; refresh it so hot
		// artifacts survive compaction. Best-effort: a file GC removed
		// between the read and the touch was already served from b.
		now := time.Now()
		os.Chtimes(path, now, now)
	}
	return payload, true
}

// decode validates one artifact file image against the expected key and
// schema and extracts its payload.
func decode(b []byte, key string, schema int) ([]byte, error) {
	rest, ok := strings.CutPrefix(string(b), magic+"\n")
	if !ok {
		return nil, errors.New("bad magic")
	}
	hline, payload, ok := strings.Cut(rest, "\n")
	if !ok {
		return nil, errors.New("truncated header")
	}
	var h header
	if err := json.Unmarshal([]byte(hline), &h); err != nil {
		return nil, fmt.Errorf("bad header: %w", err)
	}
	if h.Key != key {
		return nil, fmt.Errorf("key mismatch: artifact holds %q", h.Key)
	}
	if h.Schema != schema {
		return nil, fmt.Errorf("schema mismatch: artifact holds %d, store speaks %d", h.Schema, schema)
	}
	if len(payload) != h.PayloadLen {
		return nil, fmt.Errorf("payload length %d, header says %d", len(payload), h.PayloadLen)
	}
	if got := payloadSum([]byte(payload)); got != h.PayloadSHA {
		return nil, errors.New("payload checksum mismatch")
	}
	return []byte(payload), nil
}

func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// writeAtomic writes data to path via a same-directory temp file, fsync,
// and rename, then fsyncs the directory, creating bucket directories as
// needed.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if !s.noSync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("store: fsync %s: %w", tmpName, err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: rename: %w", err)
	}
	if !s.noSync {
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// gc is the size-bounded compaction pass: one walk over the bucket tree
// collecting (path, size, mtime) per artifact, a resync of the byte count
// (healing any drift from racing processes), then oldest-mtime-first
// removal down to the low-water mark. At most one pass runs at a time;
// a Put that trips the bound while another pass is walking just returns.
func (s *Store) gc() {
	if !s.gcMu.TryLock() {
		return
	}
	defer s.gcMu.Unlock()
	s.gcRuns.Add(1)

	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, artSuffix) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	s.diskBytes.Store(total)
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].mtime.Before(entries[b].mtime) })
	target := int64(float64(s.maxBytes) * gcLowWater)
	for _, e := range entries {
		if total <= target {
			break
		}
		if err := os.Remove(e.path); err != nil {
			continue // raced a corruption-removal or another GC; walk resyncs next time
		}
		total -= e.size
		s.diskBytes.Add(-e.size)
		s.evictedFiles.Add(1)
		s.evictedBytes.Add(e.size)
	}
}

// DiskBytes reports the store's (approximate) artifact bytes on disk.
func (s *Store) DiskBytes() int64 { return s.diskBytes.Load() }

// Purge deletes every artifact file (but not the VERSION marker). Temp
// files from in-progress writers are left alone.
func (s *Store) Purge() error {
	return filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, artSuffix) {
			return err
		}
		info, ierr := d.Info()
		if rerr := os.Remove(path); rerr != nil {
			return rerr
		}
		if ierr == nil {
			s.diskBytes.Add(-info.Size())
		}
		return nil
	})
}

// Len walks the store and counts artifact files. O(entries); intended for
// tests and stats endpoints, not hot paths.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.root, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, artSuffix) {
			n++
		}
		return nil
	})
	return n
}

// Stats is a point-in-time snapshot of the store's counters (since Open;
// the on-disk entry count is not included — see Len).
type Stats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Writes       int64 `json:"writes"`
	Corrupt      int64 `json:"corrupt"`
	BytesRead    int64 `json:"bytes_read"`
	BytesWritten int64 `json:"bytes_written"`
	DiskBytes    int64 `json:"disk_bytes"`
	MaxBytes     int64 `json:"max_bytes,omitempty"`
	GCRuns       int64 `json:"gc_runs"`
	EvictedFiles int64 `json:"evicted_files"`
	EvictedBytes int64 `json:"evicted_bytes"`
	TmpSwept     int64 `json:"tmp_swept"`
	Schema       int   `json:"schema"`
}

// Stats returns the current counter values.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Writes:       s.writes.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
		DiskBytes:    s.diskBytes.Load(),
		MaxBytes:     s.maxBytes,
		GCRuns:       s.gcRuns.Load(),
		EvictedFiles: s.evictedFiles.Load(),
		EvictedBytes: s.evictedBytes.Load(),
		TmpSwept:     s.tmpSwept.Load(),
		Schema:       s.schema,
	}
}
