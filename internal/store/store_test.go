package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, schema int) *Store {
	t.Helper()
	s, err := Open(dir, Options{Schema: schema, NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), 1)
	payload := []byte(`{"report":"x"}`)
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 write, 0 corrupt", st)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := open(t, t.TempDir(), 1)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", got, ok)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d after overwrites; want 1", n)
	}
}

func TestBucketLayout(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1)
	if err := s.Put("layout", []byte("p")); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "??", "??", "*"+artSuffix))
	if err != nil || len(matches) != 1 {
		t.Fatalf("artifact not in two-level bucket layout: %v (%v)", matches, err)
	}
	base := filepath.Base(matches[0])
	if !strings.HasPrefix(base, filepath.Base(filepath.Dir(filepath.Dir(matches[0])))) {
		t.Fatalf("bucket dirs should prefix the artifact name: %s", matches[0])
	}
}

// artifactPath digs out the one artifact file under the store root.
func artifactPath(t *testing.T, root string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(root, "??", "??", "*"+artSuffix))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one artifact, got %v (%v)", matches, err)
	}
	return matches[0]
}

// TestCorruptionIsAMiss is the robustness criterion: a flipped payload byte,
// a truncated file, garbage, or an empty file must each read as a miss (and
// tick the corruption counter), never crash, and a re-Put must heal the slot.
func TestCorruptionIsAMiss(t *testing.T) {
	payload := []byte(`{"report":{"cfg":{"nodes":7}}}`)
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			c := bytes.Clone(b)
			c[len(c)-2] ^= 0x40
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte("not an artifact") }},
		{"bad header json", func(b []byte) []byte {
			i := bytes.IndexByte(b, '\n')
			return append(append(bytes.Clone(b[:i+1]), []byte("{oops\n")...), b...)
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 1)
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			path := artifactPath(t, dir)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.mutate(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("k"); ok {
				t.Fatalf("corrupted artifact returned a hit: %q", got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
			// The bad file must be gone (or at least the slot rewritable).
			if err := s.Put("k", payload); err != nil {
				t.Fatalf("re-Put after corruption: %v", err)
			}
			if got, ok := s.Get("k"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("slot did not heal after re-Put: %q, %v", got, ok)
			}
		})
	}
}

// TestKeyCollisionParanoia: an artifact whose header names a different key
// (as would happen on a sha256 path collision, or a file copied between
// stores) is rejected as corrupt.
func TestKeyCollisionParanoia(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1)
	if err := s.Put("kA", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Graft kA's file onto kB's path.
	src := artifactPath(t, dir)
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := s.path("kB")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("kB"); ok {
		t.Fatalf("foreign artifact served for kB: %q", got)
	}
}

// TestSchemaBumpInvalidates: reopening with a bumped schema version runs the
// migration hook and makes old entries unreachable — both via the key (the
// schema is folded in by the engine) and via the artifact's own header.
func TestSchemaBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 1)
	if err := s1.Put("k", []byte("v1 payload")); err != nil {
		t.Fatal(err)
	}
	if s1.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s1.Len())
	}

	var hookFrom, hookTo int
	s2, err := Open(dir, Options{Schema: 2, NoSync: true, Migrate: func(s *Store, from, to int) error {
		hookFrom, hookTo = from, to
		return PurgeMigration(s, from, to)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if hookFrom != 1 || hookTo != 2 {
		t.Fatalf("migration hook ran with (%d,%d), want (1,2)", hookFrom, hookTo)
	}
	if n := s2.Len(); n != 0 {
		t.Fatalf("purge migration left %d artifacts", n)
	}
	if _, ok := s2.Get("k"); ok {
		t.Fatal("old-schema entry survived the bump")
	}
	// Reopening at the same schema must not re-run the hook.
	ran := false
	if _, err := Open(dir, Options{Schema: 2, NoSync: true, Migrate: func(s *Store, from, to int) error {
		ran = true
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("migration hook ran without a version change")
	}
}

// TestSchemaMismatchedArtifactRejected: even if a migration hook declines to
// purge, an artifact written under another schema version fails validation.
func TestSchemaMismatchedArtifactRejected(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 1)
	if err := s1.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Schema: 2, NoSync: true, Migrate: func(*Store, int, int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("k"); ok {
		t.Fatal("schema-1 artifact served by a schema-2 store")
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("schema mismatch should count as corruption, stats = %+v", st)
	}
}

// TestConcurrentReadersWriters hammers one store from many goroutines, with
// overlapping keys, under -race. Every successful Get must return a value
// some writer actually wrote for that key.
func TestConcurrentReadersWriters(t *testing.T) {
	s := open(t, t.TempDir(), 1)
	const (
		keys    = 8
		workers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("k%d", (w+i)%keys)
				if w%2 == 0 {
					if err := s.Put(k, []byte("val-"+k)); err != nil {
						t.Errorf("Put %s: %v", k, err)
						return
					}
				}
				if v, ok := s.Get(k); ok && string(v) != "val-"+k {
					t.Errorf("Get %s = %q, want val-%s", k, v, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent access produced corruption reports: %+v", st)
	}
}

// TestOrphanTmpSweep: tmp files orphaned by a crash between create and
// rename are removed at Open, while a fresh tmp file (a live writer in
// another process) is left alone. Artifacts are untouched either way.
func TestOrphanTmpSweep(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 1)
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	bucket := filepath.Dir(artifactPath(t, dir))

	stale := filepath.Join(bucket, tmpPrefix+"stale1")
	fresh := filepath.Join(bucket, tmpPrefix+"fresh1")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTmpAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 1)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp orphan survived the Open sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp file (possible live writer) was swept: %v", err)
	}
	if st := s2.Stats(); st.TmpSwept != 1 {
		t.Fatalf("TmpSwept = %d, want 1", st.TmpSwept)
	}
	if got, ok := s2.Get("k"); !ok || string(got) != "payload" {
		t.Fatalf("artifact damaged by the sweep: %q, %v", got, ok)
	}
}

// TestGCEvictsOldestFirst: with MaxBytes set, Put triggers eviction by
// access time (mtime, refreshed on Get), total size compacts under the
// bound, and recently-read artifacts survive in preference to cold ones.
func TestGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 1024)
	// Budget for roughly 8 of the ~1.2KB artifact files.
	s, err := Open(dir, Options{Schema: 1, NoSync: true, MaxBytes: 10 * 1024})
	if err != nil {
		t.Fatal(err)
	}

	// Write 4 artifacts, backdate k1..k3 an hour, and pin k0's access time
	// ahead of everything the test writes later — the "constantly re-read"
	// artifact. (The Get-touch path itself is exercised separately; explicit
	// Chtimes keeps this test deterministic under coarse mtime granularity.)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-time.Hour)
	for i := 1; i < 4; i++ {
		if err := os.Chtimes(s.path(fmt.Sprintf("k%d", i)), old, old); err != nil {
			t.Fatal(err)
		}
	}
	hot := time.Now().Add(time.Hour)
	if err := os.Chtimes(s.path("k0"), hot, hot); err != nil {
		t.Fatal(err)
	}

	// Blow past the bound; GC must fire and compact below MaxBytes.
	for i := 4; i < 16; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.GCRuns == 0 || st.EvictedFiles == 0 || st.EvictedBytes == 0 {
		t.Fatalf("GC never fired: %+v", st)
	}
	if st.DiskBytes > st.MaxBytes {
		t.Fatalf("disk bytes %d still above bound %d after GC", st.DiskBytes, st.MaxBytes)
	}
	// The backdated artifacts k1..k3 must be gone; the re-touched k0 and the
	// newest writes must survive.
	for i := 1; i < 4; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("cold artifact k%d survived eviction", i)
		}
	}
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("hot artifact k0 was evicted before cold ones")
	}
	if _, ok := s.Get("k15"); !ok {
		t.Fatal("newest artifact k15 was evicted")
	}
}

// TestGetTouchRefreshesAccessClock: a Get on a bounded store pushes the
// artifact's mtime forward — the clock GC evicts by.
func TestGetTouchRefreshesAccessClock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Schema: 1, NoSync: true, MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("Get missed")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(old.Add(30 * time.Minute)) {
		t.Fatalf("Get did not refresh the access clock: mtime %v", info.ModTime())
	}
}

// TestGCConcurrentPutGet hammers a bounded store from readers and writers
// under -race: every successful Get returns the right bytes (an evicted
// artifact is a miss, never a wrong answer), no corruption is reported, and
// the store ends under its bound.
func TestGCConcurrentPutGet(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 512)
	s, err := Open(t.TempDir(), Options{Schema: 1, NoSync: true, MaxBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	const (
		keys    = 48 // ~32KB of artifacts vs an 8KB bound: GC runs constantly
		workers = 8
		rounds  = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("k%d", (w*rounds+i)%keys)
				if w%2 == 0 {
					if err := s.Put(k, append(bytes.Clone(payload), k...)); err != nil {
						t.Errorf("Put %s: %v", k, err)
						return
					}
				}
				if v, ok := s.Get(k); ok && !bytes.HasSuffix(v, []byte(k)) {
					t.Errorf("Get %s returned another key's payload", k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("concurrent GC produced corruption reports: %+v", st)
	}
	if st.EvictedFiles == 0 {
		t.Fatalf("GC never evicted despite 4x oversubscription: %+v", st)
	}
	// One final GC-triggering Put settles any in-flight drift, then the
	// bound must hold.
	if err := s.Put("final", payload); err != nil {
		t.Fatal(err)
	}
	s.gc()
	if got := s.DiskBytes(); got > st.MaxBytes {
		t.Fatalf("disk bytes %d above bound %d after settling", got, st.MaxBytes)
	}
}

func TestOpenRejectsBadSchema(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Schema: 0}); err == nil {
		t.Fatal("Open accepted schema 0")
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 1)
	if err := s1.Put("k", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 1)
	got, ok := s2.Get("k")
	if !ok || string(got) != "durable" {
		t.Fatalf("reopened store lost the artifact: %q, %v", got, ok)
	}
}
