package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"
)

// ClientOptions configure Dial.
type ClientOptions struct {
	// Schema is the artifact schema version the client requires (must match
	// the server's exactly).
	Schema int
	// DialTimeout bounds connection establishment plus the handshake.
	// Zero means 2s.
	DialTimeout time.Duration
	// FrameSlack is added beyond a batch's analysis timeout when computing
	// the read deadline for its result frames. Zero means 5s.
	FrameSlack time.Duration
}

func (o *ClientOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.FrameSlack <= 0 {
		o.FrameSlack = 5 * time.Second
	}
}

// Client is one negotiated connection to a backend. It is not safe for
// concurrent use: a connection carries one batch at a time. Callers that
// need concurrency hold several Clients (see the frontier's per-backend
// pool).
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	opts   ClientOptions
	ack    HelloAck
	nextID uint64
	broken bool // a transport/protocol error occurred; do not reuse
}

// Dial connects to addr and performs the handshake.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts.defaults()
	if opts.Schema < 1 {
		return nil, fmt.Errorf("wire: client schema version must be >= 1")
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		opts: opts,
	}
	conn.SetDeadline(time.Now().Add(opts.DialTimeout))
	hello := Hello{Magic: helloMagic, ProtoMin: 1, ProtoMax: ProtoVersion, Schema: opts.Schema}
	if err := c.send(frameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	kind, payload, err := readFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake read: %w", err)
	}
	if werr := errWire(kind, payload); werr != nil {
		conn.Close()
		return nil, werr
	}
	if kind != frameHelloAck {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake: unexpected frame kind %d", kind)
	}
	ack, err := decodeAs[HelloAck](payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake: malformed ack: %w", err)
	}
	if ack.Proto < 1 || ack.Proto > ProtoVersion {
		conn.Close()
		return nil, &WireError{Code: "version", Message: fmt.Sprintf("server picked unsupported protocol %d", ack.Proto)}
	}
	if ack.Schema != opts.Schema {
		conn.Close()
		return nil, &WireError{Code: "schema", Message: fmt.Sprintf("server schema %d, client %d", ack.Schema, opts.Schema)}
	}
	c.ack = ack
	conn.SetDeadline(time.Time{})
	return c, nil
}

// Ack returns the server's handshake acceptance (negotiated versions).
func (c *Client) Ack() HelloAck { return c.ack }

// Broken reports whether the connection hit a transport or protocol error
// and must not be reused.
func (c *Client) Broken() bool { return c.broken }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(kind byte, v any) error {
	if err := writeFrame(c.bw, kind, v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// fail marks the connection unusable and returns err.
func (c *Client) fail(err error) error {
	c.broken = true
	return err
}

// AnalyzeBatch sends items and invokes onResult for every Result frame as it
// arrives (out of order, tagged by Result.Index), returning after BatchDone.
// The read deadline is the soonest of ctx's deadline and the batch's largest
// item timeout plus FrameSlack, pushed forward on every received frame —
// a batch making progress is not reaped, a hung server is.
//
// Cancelling ctx interrupts a blocked read immediately (not at the next
// deadline): a hedged request whose other replica won can release this
// connection right away. The interrupted connection is marked broken and
// will be discarded, never reused mid-batch — that is what makes
// cancellation hedge-safe.
func (c *Client) AnalyzeBatch(ctx context.Context, items []Item, onResult func(Result)) error {
	if c.broken {
		return fmt.Errorf("wire: client is broken")
	}
	c.nextID++
	id := c.nextID
	var maxTimeout time.Duration
	for _, it := range items {
		if d := time.Duration(it.TimeoutMS) * time.Millisecond; d > maxTimeout {
			maxTimeout = d
		}
	}
	if maxTimeout <= 0 {
		maxTimeout = 30 * time.Second
	}
	frameBudget := maxTimeout + c.opts.FrameSlack
	defer c.watchCancel(ctx)()

	c.conn.SetWriteDeadline(deadlineFrom(ctx, frameBudget))
	if err := c.send(frameBatch, Batch{ID: id, Items: items}); err != nil {
		return c.fail(fmt.Errorf("wire: send batch: %w", err))
	}
	seen := 0
	for {
		// Order matters: set the deadline first, check ctx after. The
		// cancellation watcher may stomp the deadline concurrently, but then
		// ctx.Err() is already non-nil and this check returns before the read.
		c.conn.SetReadDeadline(deadlineFrom(ctx, frameBudget))
		if err := ctx.Err(); err != nil {
			return c.fail(err)
		}
		kind, payload, err := readFrame(c.br)
		if err != nil {
			return c.fail(fmt.Errorf("wire: read batch result: %w", err))
		}
		switch kind {
		case frameResult:
			res, err := decodeAs[Result](payload)
			if err != nil {
				return c.fail(fmt.Errorf("wire: malformed result: %w", err))
			}
			if res.ID != id {
				return c.fail(fmt.Errorf("wire: result for batch %d on batch %d", res.ID, id))
			}
			seen++
			if onResult != nil {
				onResult(res)
			}
		case frameBatchDone:
			done, err := decodeAs[BatchDone](payload)
			if err != nil {
				return c.fail(fmt.Errorf("wire: malformed batch-done: %w", err))
			}
			if done.ID != id || done.Results != seen {
				return c.fail(fmt.Errorf("wire: batch-done mismatch: id=%d results=%d, saw %d on batch %d",
					done.ID, done.Results, seen, id))
			}
			c.conn.SetReadDeadline(time.Time{})
			c.conn.SetWriteDeadline(time.Time{})
			return nil
		case framePong:
			// A stray pong (health check raced a batch) is harmless.
		default:
			if werr := errWire(kind, payload); werr != nil {
				return c.fail(werr)
			}
			return c.fail(fmt.Errorf("wire: unexpected frame kind %d during batch", kind))
		}
	}
}

// watchCancel arms a goroutine that yanks the connection's read deadline to
// "now" the moment ctx is cancelled, unblocking a read in progress. The
// returned func disarms it; call via defer.
func (c *Client) watchCancel(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.conn.SetReadDeadline(time.Now())
		case <-stop:
		}
	}()
	return func() { close(stop) }
}

// StorePut (proto >= 2) pushes one finished artifact into the backend's
// store, for the frontier's replication and read-repair paths. A storage
// failure on the backend comes back as an error but leaves the connection
// healthy; transport failures mark it broken as usual.
func (c *Client) StorePut(ctx context.Context, key string, payload []byte) error {
	if c.broken {
		return fmt.Errorf("wire: client is broken")
	}
	if c.ack.Proto < 2 {
		return &WireError{Code: "version", Message: fmt.Sprintf("backend speaks proto %d; store push needs >= 2", c.ack.Proto)}
	}
	defer c.watchCancel(ctx)()
	c.conn.SetWriteDeadline(deadlineFrom(ctx, 10*time.Second))
	if err := c.send(frameStorePut, StorePut{Key: key, Payload: payload}); err != nil {
		return c.fail(fmt.Errorf("wire: send store-put: %w", err))
	}
	for {
		c.conn.SetReadDeadline(deadlineFrom(ctx, 10*time.Second))
		if err := ctx.Err(); err != nil {
			return c.fail(err)
		}
		kind, payload, err := readFrame(c.br)
		if err != nil {
			return c.fail(fmt.Errorf("wire: read store-ack: %w", err))
		}
		switch kind {
		case frameStoreAck:
			ack, err := decodeAs[StoreAck](payload)
			if err != nil {
				return c.fail(fmt.Errorf("wire: malformed store-ack: %w", err))
			}
			c.conn.SetReadDeadline(time.Time{})
			c.conn.SetWriteDeadline(time.Time{})
			if !ack.OK {
				return fmt.Errorf("wire: backend store refused %q: %s", key, ack.Error)
			}
			return nil
		case framePong:
			// A stray pong (health check raced the push) is harmless.
		default:
			if werr := errWire(kind, payload); werr != nil {
				return c.fail(werr)
			}
			return c.fail(fmt.Errorf("wire: unexpected frame kind %d during store-put", kind))
		}
	}
}

// Ping round-trips a liveness probe.
func (c *Client) Ping(ctx context.Context) error {
	if c.broken {
		return fmt.Errorf("wire: client is broken")
	}
	c.conn.SetWriteDeadline(deadlineFrom(ctx, 2*time.Second))
	if err := c.send(framePing, struct{}{}); err != nil {
		return c.fail(err)
	}
	c.conn.SetReadDeadline(deadlineFrom(ctx, 2*time.Second))
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return c.fail(err)
	}
	if kind != framePong {
		if werr := errWire(kind, payload); werr != nil {
			return c.fail(werr)
		}
		return c.fail(fmt.Errorf("wire: ping answered with frame kind %d", kind))
	}
	c.conn.SetReadDeadline(time.Time{})
	c.conn.SetWriteDeadline(time.Time{})
	return nil
}
