package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler computes one item of a batch. It must be safe for concurrent use;
// the server fans a batch's items across ServerOptions.Workers goroutines.
type Handler func(ctx context.Context, item Item) Result

// ServerOptions configure a Server.
type ServerOptions struct {
	// Schema is the artifact schema version this backend produces. A client
	// whose Hello names any other schema is refused.
	Schema int
	// Workers bounds per-batch item concurrency. Zero means 4.
	Workers int
	// Name identifies the server in HelloAck (e.g. "dfg-worker").
	Name string
	// IdleTimeout reaps connections with no frame activity between batches.
	// Zero means 5 minutes.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange. Zero means 5s.
	HandshakeTimeout time.Duration
	// StorePut accepts a replicated artifact pushed by the frontier
	// (proto >= 2). nil means pushes are acked with OK=false — the backend
	// has no store, which costs replication coverage, never correctness.
	StorePut func(key string, payload []byte) error
}

func (o *ServerOptions) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Name == "" {
		o.Name = "dfg-backend"
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
}

// Server speaks the backend side of the protocol. Create with NewServer,
// run with Serve, stop with Shutdown (which drains in-flight batches).
type Server struct {
	handler Handler
	opts    ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool

	inflight sync.WaitGroup // open batches
	connWG   sync.WaitGroup // connection goroutines
}

// NewServer returns a Server that answers batches with h.
func NewServer(h Handler, opts ServerOptions) *Server {
	opts.defaults()
	if opts.Schema < 1 {
		panic("wire: ServerOptions.Schema must be >= 1")
	}
	return &Server{handler: h, opts: opts, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on l until Shutdown (or a fatal listener
// error). It returns ErrServerClosed after Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("wire: server closed")

// Shutdown stops accepting, waits for in-flight batches to drain (bounded
// by ctx), then closes every connection. Idle connections are closed
// immediately after the drain; a batch in progress finishes streaming its
// results first, which is the "no client-visible error on graceful restart"
// property the frontier's retry logic builds on.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}

	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// Close force-closes everything without draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: skip the drain wait
	s.Shutdown(ctx)
	return nil
}

// serveConn runs the handshake then the frame loop for one connection.
// Protocol violations terminate the connection; the client's next dial gets
// a fresh one.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var writeMu sync.Mutex // serializes result frames from item workers

	send := func(kind byte, v any) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		if err := writeFrame(bw, kind, v); err != nil {
			return err
		}
		return bw.Flush()
	}

	// Handshake.
	conn.SetDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	kind, payload, err := readFrame(br)
	if err != nil || kind != frameHello {
		return
	}
	hello, err := decodeAs[Hello](payload)
	if err != nil || hello.Magic != helloMagic {
		send(frameError, &WireError{Code: "proto", Message: "malformed hello"})
		return
	}
	if hello.ProtoMin > ProtoVersion || hello.ProtoMax < 1 {
		send(frameError, &WireError{Code: "version",
			Message: fmt.Sprintf("no shared protocol version: client %d..%d, server 1..%d",
				hello.ProtoMin, hello.ProtoMax, ProtoVersion)})
		return
	}
	proto := hello.ProtoMax
	if proto > ProtoVersion {
		proto = ProtoVersion
	}
	if hello.Schema != s.opts.Schema {
		send(frameError, &WireError{Code: "schema",
			Message: fmt.Sprintf("schema mismatch: client %d, server %d", hello.Schema, s.opts.Schema)})
		return
	}
	if err := send(frameHelloAck, HelloAck{Proto: proto, Schema: s.opts.Schema, Server: s.opts.Name}); err != nil {
		return
	}

	// Frame loop.
	for {
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		kind, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch kind {
		case framePing:
			if err := send(framePong, struct{}{}); err != nil {
				return
			}
		case frameBatch:
			batch, err := decodeAs[Batch](payload)
			if err != nil {
				send(frameError, &WireError{Code: "proto", Message: "malformed batch"})
				return
			}
			if !s.beginBatch() {
				send(frameError, &WireError{Code: "overload", Message: "server shutting down"})
				return
			}
			err = s.runBatch(conn, batch, send)
			s.inflight.Done()
			if err != nil {
				return
			}
		case frameStorePut:
			if proto < 2 {
				send(frameError, &WireError{Code: "proto", Message: "store-put needs protocol >= 2"})
				return
			}
			put, err := decodeAs[StorePut](payload)
			if err != nil {
				send(frameError, &WireError{Code: "proto", Message: "malformed store-put"})
				return
			}
			ack := StoreAck{OK: true}
			if s.opts.StorePut == nil {
				ack = StoreAck{OK: false, Error: "backend has no artifact store"}
			} else if err := s.opts.StorePut(put.Key, put.Payload); err != nil {
				// Storage trouble fails the push, not the connection: the
				// artifact still exists wherever it was computed.
				ack = StoreAck{OK: false, Error: err.Error()}
			}
			if err := send(frameStoreAck, ack); err != nil {
				return
			}
		default:
			send(frameError, &WireError{Code: "proto", Message: fmt.Sprintf("unexpected frame kind %d", kind)})
			return
		}
	}
}

// beginBatch registers an in-flight batch unless the server is draining.
func (s *Server) beginBatch() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// runBatch fans the batch's items across the worker budget and streams each
// Result as it completes. Result frames are written (and flushed) under the
// send mutex, so a graceful shutdown that waits for the batch observes
// fully-written frames.
func (s *Server) runBatch(conn net.Conn, batch Batch, send func(byte, any) error) error {
	// While items are computing, the per-frame read deadline no longer
	// applies; the write path's progress is the liveness signal.
	conn.SetReadDeadline(time.Time{})

	ctx := context.Background()
	sem := make(chan struct{}, s.opts.Workers)
	var wg sync.WaitGroup
	var sendErr error
	var sendErrOnce sync.Once
	for i, item := range batch.Items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, item Item) {
			defer wg.Done()
			defer func() { <-sem }()
			res := s.safeHandle(ctx, item)
			res.ID = batch.ID
			res.Index = i
			if err := send(frameResult, res); err != nil {
				sendErrOnce.Do(func() { sendErr = err })
			}
		}(i, item)
	}
	wg.Wait()
	if sendErr != nil {
		return sendErr
	}
	return send(frameBatchDone, BatchDone{ID: batch.ID, Results: len(batch.Items)})
}

// safeHandle guards the handler: a panic fails the one item, not the
// connection or the process.
func (s *Server) safeHandle(ctx context.Context, item Item) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{OK: false, Error: fmt.Sprintf("handler panicked: %v", r), Unprocessable: true}
		}
	}()
	return s.handler(ctx, item)
}
