// Package wire is the versioned streaming protocol between the serving
// frontier (cmd/dfg-serve) and analysis backends (cmd/dfg-worker). It is
// gRPC in spirit — typed messages, a handshake, streamed responses — hand
// rolled on net + encoding/json so the repository stays stdlib-only
// (turbo-geth's remote-DB proto files are the design reference, not a
// dependency).
//
// Framing. Every message on the connection is one frame:
//
//	byte 0      frame kind
//	bytes 1..4  big-endian payload length
//	bytes 5..   payload, a single JSON document
//
// Frames are small enough to decode eagerly; MaxFrame bounds the payload so
// a corrupt or hostile peer cannot make a reader allocate unboundedly.
//
// Handshake. The client speaks first: a Hello frame carrying the protocol
// version range it supports and the artifact schema version it expects. The
// server answers with a HelloAck naming the version it picked, or an Error
// frame and a close. Protocol versions negotiate down (highest shared
// version wins); schema versions must match exactly — a frontier must never
// mix Report payloads of two schemas, that is what the version field is for.
//
// Requests. One Batch frame carries N analysis items. The server streams
// one Result frame per item *as each item completes* — out of order, tagged
// with the item's index — followed by a BatchDone frame. A connection
// processes one batch at a time (the frontier holds a pool of connections
// per backend instead of multiplexing streams; simpler, and connection
// setup is two frames).
//
// Liveness. Ping/Pong frames serve health checks, and every read on both
// sides carries a deadline: the server's idle-read deadline reaps dead
// clients, the client's per-batch deadline (request timeout + slack, or the
// context deadline if sooner) reaps dead servers mid-batch and is pushed
// forward every time a Result frame arrives, so a long batch that is making
// progress is never reaped.
package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProtoVersion is the newest protocol version this build speaks. Version 1:
// frames as documented above. Version 2 adds StorePut/StoreAck frames — a
// frontier pushing a finished artifact into a replica's store (replication
// and read repair). The handshake negotiates down: a v2 frontier talking to
// a v1 backend simply skips replication pushes on that connection.
const ProtoVersion = 2

// MaxFrame bounds a frame payload (64 MiB — a Report for a very large
// program is well under 1 MiB; the headroom is for batches).
const MaxFrame = 64 << 20

// Frame kinds.
const (
	frameHello     = byte(1)
	frameHelloAck  = byte(2)
	frameBatch     = byte(3)
	frameResult    = byte(4)
	frameBatchDone = byte(5)
	framePing      = byte(6)
	framePong      = byte(7)
	frameError     = byte(8)
	frameStorePut  = byte(9)  // proto >= 2
	frameStoreAck  = byte(10) // proto >= 2
)

// Hello is the client's opening message.
type Hello struct {
	Magic    string `json:"magic"` // "dfgwire"
	ProtoMin int    `json:"proto_min"`
	ProtoMax int    `json:"proto_max"`
	Schema   int    `json:"schema"` // artifact (Report) schema version; must match exactly
}

// HelloAck is the server's acceptance.
type HelloAck struct {
	Proto  int    `json:"proto"`  // the negotiated protocol version
	Schema int    `json:"schema"` // echoed schema version
	Server string `json:"server"` // free-form identification, e.g. "dfg-worker"
}

const helloMagic = "dfgwire"

// Item is one program analysis request inside a batch. It mirrors the HTTP
// API's analyzeRequest, flattened to plain data so this package needs no
// knowledge of the pipeline.
type Item struct {
	Program    string   `json:"program"`
	Stages     []string `json:"stages,omitempty"`
	Predicates bool     `json:"predicates,omitempty"`
	// SourceKind selects the frontend for Program ("" = toy-language
	// source, "bytecode" = bytecode assembly text). Binary containers are
	// disassembled before they reach the wire.
	SourceKind string  `json:"source_kind,omitempty"`
	Inputs     []int64 `json:"inputs,omitempty"`
	TimeoutMS  int64   `json:"timeout_ms,omitempty"`
}

// Batch is the request frame payload.
type Batch struct {
	ID    uint64 `json:"id"`
	Items []Item `json:"items"`
}

// Result is one streamed response. Report is the raw Report JSON exactly as
// the backend produced it: the frontier forwards these bytes verbatim, which
// is what makes "byte-identical to in-process analysis" a meaningful
// end-to-end property.
type Result struct {
	ID     uint64          `json:"id"`
	Index  int             `json:"index"`
	OK     bool            `json:"ok"`
	Key    string          `json:"key,omitempty"`
	Report json.RawMessage `json:"report,omitempty"`
	Meta   map[string]Meta `json:"meta,omitempty"`
	Tier   string          `json:"tier,omitempty"` // compute | lru | store
	Error  string          `json:"error,omitempty"`
	// Unprocessable distinguishes "this program is at fault" (parse error,
	// stage panic — do not retry elsewhere) from backend trouble.
	Unprocessable bool `json:"unprocessable,omitempty"`
}

// Meta is the per-stage satisfaction record, mirroring the HTTP stageMeta.
type Meta struct {
	CacheHit bool  `json:"cache_hit"`
	NS       int64 `json:"ns"`
}

// BatchDone terminates a batch's result stream.
type BatchDone struct {
	ID      uint64 `json:"id"`
	Results int    `json:"results"`
}

// StorePut (proto >= 2) pushes one finished artifact into the backend's
// store: the frontier's replication and read-repair primitive. Payload is
// the canonical Report JSON exactly as some backend produced it — the
// receiver stores the bytes verbatim, preserving the byte-identical
// end-to-end property. The schema was fenced at handshake time, so both
// sides already agree on what the bytes mean.
type StorePut struct {
	Key     string `json:"key"`
	Payload []byte `json:"payload"` // base64 inside the JSON frame
}

// StoreAck answers a StorePut. OK=false carries the storage error; the
// connection stays healthy either way (a full replica disk must not sever
// the analysis path).
type StoreAck struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// WireError is the Error frame payload and the error type handshake and
// batch failures surface as.
type WireError struct {
	Code    string `json:"code"` // "version", "schema", "proto", "overload"
	Message string `json:"message"`
}

func (e *WireError) Error() string { return fmt.Sprintf("wire: %s: %s", e.Code, e.Message) }

// writeFrame emits one frame. The caller serializes access to w.
func writeFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal frame %d: %w", kind, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame %d payload %d exceeds MaxFrame", kind, len(payload))
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one frame, returning its kind and raw payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame payload %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return hdr[0], payload, nil
}

// decodeAs unmarshals payload into a fresh T.
func decodeAs[T any](payload []byte) (T, error) {
	var v T
	err := json.Unmarshal(payload, &v)
	return v, err
}

// deadlineFrom converts a context deadline to a net deadline, using fallback
// (from now) when the context carries none.
func deadlineFrom(ctx context.Context, fallback time.Duration) time.Time {
	if d, ok := ctx.Deadline(); ok {
		return d
	}
	return time.Now().Add(fallback)
}

// errWire extracts a *WireError if the frame is an Error frame.
func errWire(kind byte, payload []byte) error {
	if kind != frameError {
		return nil
	}
	we, err := decodeAs[*WireError](payload)
	if err != nil || we == nil {
		return &WireError{Code: "proto", Message: "malformed error frame"}
	}
	return we
}
