package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoHandler answers each item with a deterministic fake report derived
// from the program text, after an optional delay encoded in the program.
func echoHandler(delay time.Duration) Handler {
	return func(ctx context.Context, item Item) Result {
		if delay > 0 {
			time.Sleep(delay)
		}
		if strings.Contains(item.Program, "BOOM") {
			panic("injected handler panic")
		}
		if strings.Contains(item.Program, "FAIL") {
			return Result{OK: false, Error: "synthetic failure", Unprocessable: true}
		}
		rep, _ := json.Marshal(map[string]any{"echo": item.Program, "stages": item.Stages})
		return Result{OK: true, Key: "key-" + item.Program, Report: rep, Tier: "compute"}
	}
}

// startServer runs a wire server on loopback and returns its address plus a
// shutdown func.
func startServer(t *testing.T, h Handler, opts ServerOptions) (addr string, srv *Server) {
	t.Helper()
	if opts.Schema == 0 {
		opts.Schema = 1
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(h, opts)
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

func TestHandshakeAndBatchStreaming(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{Name: "test-worker"})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if ack := c.Ack(); ack.Proto != ProtoVersion || ack.Schema != 1 || ack.Server != "test-worker" {
		t.Fatalf("ack = %+v", ack)
	}

	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Program: fmt.Sprintf("p%d", i), Stages: []string{"cfg"}}
	}
	var mu sync.Mutex
	got := map[int]Result{}
	err = c.AnalyzeBatch(context.Background(), items, func(r Result) {
		mu.Lock()
		got[r.Index] = r
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d results, want %d", len(got), len(items))
	}
	for i := range items {
		r := got[i]
		if !r.OK || r.Key != "key-"+items[i].Program {
			t.Fatalf("result %d = %+v", i, r)
		}
		var rep map[string]any
		if err := json.Unmarshal(r.Report, &rep); err != nil || rep["echo"] != items[i].Program {
			t.Fatalf("result %d report = %s (%v)", i, r.Report, err)
		}
	}

	// The same connection serves a second batch.
	if err := c.AnalyzeBatch(context.Background(), items[:2], nil); err != nil {
		t.Fatalf("second batch: %v", err)
	}
}

func TestItemFailuresAndPanicsAreIsolated(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	items := []Item{{Program: "ok1"}, {Program: "FAIL"}, {Program: "BOOM"}, {Program: "ok2"}}
	results := make([]Result, len(items))
	if err := c.AnalyzeBatch(context.Background(), items, func(r Result) { results[r.Index] = r }); err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if !results[0].OK || !results[3].OK {
		t.Fatalf("healthy items failed: %+v %+v", results[0], results[3])
	}
	if results[1].OK || !results[1].Unprocessable {
		t.Fatalf("FAIL item: %+v", results[1])
	}
	if results[2].OK || !strings.Contains(results[2].Error, "panicked") || !results[2].Unprocessable {
		t.Fatalf("BOOM item should surface the recovered panic: %+v", results[2])
	}
}

func TestPing(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(context.Background()); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
}

func TestSchemaMismatchRefused(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{Schema: 2})
	_, err := Dial(addr, ClientOptions{Schema: 1})
	var werr *WireError
	if !errors.As(err, &werr) || werr.Code != "schema" {
		t.Fatalf("Dial err = %v, want schema WireError", err)
	}
}

// TestProtocolVersionNegotiation drives the handshake by hand with
// out-of-range version windows.
func TestProtocolVersionNegotiation(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{})

	dialHello := func(h Hello) (byte, []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, frameHello, h); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		kind, payload, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		return kind, payload
	}

	// A future client that still speaks version 1 negotiates down to 1.
	kind, payload := dialHello(Hello{Magic: helloMagic, ProtoMin: 1, ProtoMax: 99, Schema: 1})
	if kind != frameHelloAck {
		t.Fatalf("frame kind %d, want ack", kind)
	}
	ack, err := decodeAs[HelloAck](payload)
	if err != nil || ack.Proto != ProtoVersion {
		t.Fatalf("ack = %+v (%v), want proto %d", ack, err, ProtoVersion)
	}

	// A client that requires a version beyond ours is refused.
	kind, payload = dialHello(Hello{Magic: helloMagic, ProtoMin: 99, ProtoMax: 100, Schema: 1})
	werr := errWire(kind, payload)
	var we *WireError
	if !errors.As(werr, &we) || we.Code != "version" {
		t.Fatalf("want version error, got kind=%d err=%v", kind, werr)
	}

	// Bad magic is a protocol error.
	kind, payload = dialHello(Hello{Magic: "http", ProtoMin: 1, ProtoMax: 1, Schema: 1})
	werr = errWire(kind, payload)
	if !errors.As(werr, &we) || we.Code != "proto" {
		t.Fatalf("want proto error, got kind=%d err=%v", kind, werr)
	}
}

// TestShutdownDrainsInflightBatch: a batch in progress when Shutdown is
// called completes and streams all its results; the client sees no error.
func TestShutdownDrainsInflightBatch(t *testing.T) {
	addr, srv := startServer(t, echoHandler(50*time.Millisecond), ServerOptions{Workers: 2})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	items := []Item{{Program: "a"}, {Program: "b"}, {Program: "c"}, {Program: "d"}}
	batchErr := make(chan error, 1)
	var mu sync.Mutex
	var indices []int
	go func() {
		batchErr <- c.AnalyzeBatch(context.Background(), items, func(r Result) {
			mu.Lock()
			indices = append(indices, r.Index)
			mu.Unlock()
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the batch reach the server

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-batchErr; err != nil {
		t.Fatalf("client saw an error across graceful shutdown: %v", err)
	}
	sort.Ints(indices)
	if len(indices) != len(items) {
		t.Fatalf("got %d results across shutdown, want %d (%v)", len(indices), len(items), indices)
	}

	// New connections are refused after shutdown.
	if _, err := Dial(addr, ClientOptions{Schema: 1, DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("Dial succeeded after shutdown")
	}
}

// TestClientDeadlineReapsDeadServer: a server that accepts a batch and then
// hangs forever is reaped by the client's frame deadline.
func TestClientDeadlineReapsDeadServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Complete the handshake, then go silent.
		kind, payload, err := readFrame(conn)
		if err != nil || kind != frameHello {
			return
		}
		hello, _ := decodeAs[Hello](payload)
		writeFrame(conn, frameHelloAck, HelloAck{Proto: 1, Schema: hello.Schema, Server: "hang"})
		select {} // hang
	}()

	c, err := Dial(l.Addr().String(), ClientOptions{Schema: 1, FrameSlack: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.AnalyzeBatch(context.Background(), []Item{{Program: "p", TimeoutMS: 50}}, nil)
	if err == nil {
		t.Fatal("batch against a hung server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if !c.Broken() {
		t.Fatal("client not marked broken after a transport failure")
	}
	if err := c.AnalyzeBatch(context.Background(), []Item{{Program: "p"}}, nil); err == nil {
		t.Fatal("broken client accepted another batch")
	}
}

// TestStorePutRoundtrip: a proto-2 store push lands in the server's
// StorePut hook, a rejected push surfaces the error without breaking the
// connection, and a server without a store acks OK=false.
func TestStorePutRoundtrip(t *testing.T) {
	var mu sync.Mutex
	stored := map[string][]byte{}
	addr, _ := startServer(t, echoHandler(0), ServerOptions{
		StorePut: func(key string, payload []byte) error {
			if key == "reject-me" {
				return errors.New("disk full")
			}
			mu.Lock()
			stored[key] = payload
			mu.Unlock()
			return nil
		},
	})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.StorePut(context.Background(), "k1", []byte(`{"report":1}`)); err != nil {
		t.Fatalf("StorePut: %v", err)
	}
	mu.Lock()
	got := string(stored["k1"])
	mu.Unlock()
	if got != `{"report":1}` {
		t.Fatalf("stored payload = %q", got)
	}

	// A refused push errors but leaves the connection usable…
	if err := c.StorePut(context.Background(), "reject-me", []byte("x")); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("rejected push err = %v", err)
	}
	if c.Broken() {
		t.Fatal("storage refusal broke the connection")
	}
	// …for both more pushes and analysis batches.
	if err := c.StorePut(context.Background(), "k2", []byte("y")); err != nil {
		t.Fatalf("push after refusal: %v", err)
	}
	if err := c.AnalyzeBatch(context.Background(), []Item{{Program: "p"}}, nil); err != nil {
		t.Fatalf("batch after refusal: %v", err)
	}

	// A storeless server acks OK=false.
	addr2, _ := startServer(t, echoHandler(0), ServerOptions{})
	c2, err := Dial(addr2, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.StorePut(context.Background(), "k", []byte("z")); err == nil || !strings.Contains(err.Error(), "no artifact store") {
		t.Fatalf("storeless push err = %v", err)
	}
}

// TestStorePutNeedsProtoV2: a client that negotiated protocol 1 refuses to
// send store pushes locally (no wasted round-trip, no protocol violation).
func TestStorePutNeedsProtoV2(t *testing.T) {
	addr, _ := startServer(t, echoHandler(0), ServerOptions{StorePut: func(string, []byte) error { return nil }})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.ack.Proto = 1 // simulate a v1 backend on the negotiated connection
	var werr *WireError
	if err := c.StorePut(context.Background(), "k", []byte("v")); !errors.As(err, &werr) || werr.Code != "version" {
		t.Fatalf("proto-1 StorePut err = %v, want version WireError", err)
	}
	if c.Broken() {
		t.Fatal("local refusal must not break the connection")
	}
}

// TestCancelInterruptsBlockedRead is the hedge-safe-cancellation property:
// cancelling the context of an in-flight batch unblocks the read
// immediately (well before the frame deadline) and marks the client broken
// so the poisoned connection is never reused.
func TestCancelInterruptsBlockedRead(t *testing.T) {
	addr, _ := startServer(t, echoHandler(2*time.Second), ServerOptions{})
	c, err := Dial(addr, ClientOptions{Schema: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	batchErr := make(chan error, 1)
	go func() {
		batchErr <- c.AnalyzeBatch(ctx, []Item{{Program: "slow", TimeoutMS: 30_000}}, nil)
	}()
	time.Sleep(50 * time.Millisecond) // batch is blocked on the 2s handler
	start := time.Now()
	cancel()
	select {
	case err := <-batchErr:
		if err == nil {
			t.Fatal("cancelled batch returned nil error")
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("cancellation took %v to unblock the read", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation never unblocked the batch read")
	}
	if !c.Broken() {
		t.Fatal("cancelled mid-batch client must be marked broken")
	}
}

// TestOversizeFrameRejected: a frame header promising more than MaxFrame is
// rejected before any allocation.
func TestOversizeFrameRejected(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	go func() {
		hdr := []byte{frameBatch, 0xff, 0xff, 0xff, 0xff}
		client.Write(hdr)
	}()
	server.SetReadDeadline(time.Now().Add(time.Second))
	_, _, err := readFrame(server)
	if err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("err = %v, want MaxFrame rejection", err)
	}
}
