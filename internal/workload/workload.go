// Package workload generates deterministic synthetic programs for tests and
// for the scaling experiments of EXPERIMENTS.md. Two kinds of generators
// are provided:
//
//   - Random structured/unstructured programs (Generate) used for
//     differential testing: every generated program terminates (loops are
//     bounded by dedicated counters) so the interpreter can compare
//     observable behaviour before and after optimization.
//
//   - Named scaling families that exhibit the paper's asymptotic claims:
//     StraightLine, DiamondLadder (def-use blow-up, E10), LoopNest,
//     WideSwitch (constant propagation V-sweep, E4), Wide (breadth-heavy
//     sibling regions for the parallel analyses), and GotoMess
//     (irreducible control flow for the cycle-equivalence benches, E8).
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"dfg/internal/lang/ast"
	"dfg/internal/lang/parser"
	"dfg/internal/lang/token"
)

// Config parameterizes Generate.
type Config struct {
	Stmts     int     // target number of statements (approximate)
	Vars      int     // number of distinct variables (>=1)
	MaxDepth  int     // maximum nesting depth of if/while
	PIf       float64 // probability a statement is an if
	PWhile    float64 // probability a statement is a while
	PRead     float64 // probability a statement is a read
	PPrint    float64 // probability a statement is a print
	LoopBound int     // iteration bound for generated loops (default 3)
	Seed      int64
}

// DefaultConfig returns a config producing mixed structured programs of
// roughly n statements.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Stmts:     n,
		Vars:      4 + n/10,
		MaxDepth:  4,
		PIf:       0.18,
		PWhile:    0.10,
		PRead:     0.08,
		PPrint:    0.10,
		LoopBound: 3,
		Seed:      seed,
	}
}

type gen struct {
	rng      *rand.Rand
	cfg      Config
	vars     []string
	counters int // loop counter suffix
	budget   int
}

// Generate produces a random structured program. Programs always terminate:
// every while loop uses a dedicated fresh counter variable bounded by
// Config.LoopBound, and the counter is never assigned in the body. The
// program begins with reads of a few variables (so values are
// runtime-unknown) and ends by printing every variable (so optimizations
// are observable).
func Generate(c Config) *ast.Program {
	if c.Vars < 1 {
		c.Vars = 1
	}
	if c.LoopBound <= 0 {
		c.LoopBound = 3
	}
	g := &gen{rng: rand.New(rand.NewSource(c.Seed)), cfg: c, budget: c.Stmts}
	for i := 0; i < c.Vars; i++ {
		g.vars = append(g.vars, fmt.Sprintf("v%d", i))
	}
	var stmts []ast.Stmt
	// Seed a few unknown inputs.
	reads := 1 + c.Vars/3
	for i := 0; i < reads && i < c.Vars; i++ {
		stmts = append(stmts, &ast.ReadStmt{Name: g.vars[i]})
	}
	// Initialize the rest so every variable is defined before use.
	for i := reads; i < c.Vars; i++ {
		stmts = append(stmts, &ast.AssignStmt{Name: g.vars[i], RHS: &ast.IntLit{Value: int64(g.rng.Intn(10))}})
	}
	for g.budget > 0 {
		stmts = append(stmts, g.block(0)...)
	}
	for _, v := range g.vars {
		stmts = append(stmts, &ast.PrintStmt{Arg: &ast.VarRef{Name: v}})
	}
	return &ast.Program{Stmts: stmts}
}

func (g *gen) pick() string { return g.vars[g.rng.Intn(len(g.vars))] }

func bin(op token.Kind, x, y ast.Expr) ast.Expr {
	return &ast.BinaryExpr{Op: op, X: x, Y: y}
}

func (g *gen) expr(depth int) ast.Expr {
	if depth <= 0 || g.rng.Float64() < 0.4 {
		if g.rng.Float64() < 0.5 {
			return &ast.IntLit{Value: int64(g.rng.Intn(20))}
		}
		return &ast.VarRef{Name: g.pick()}
	}
	ops := []token.Kind{token.PLUS, token.MINUS, token.STAR}
	op := ops[g.rng.Intn(len(ops))]
	return bin(op, g.expr(depth-1), g.expr(depth-1))
}

func (g *gen) cond() ast.Expr {
	ops := []token.Kind{token.LT, token.LE, token.GT, token.GE, token.EQ, token.NEQ}
	op := ops[g.rng.Intn(len(ops))]
	return bin(op, &ast.VarRef{Name: g.pick()}, &ast.IntLit{Value: int64(g.rng.Intn(10))})
}

// block generates a short statement sequence at the given nesting depth.
func (g *gen) block(depth int) []ast.Stmt {
	var stmts []ast.Stmt
	n := 1 + g.rng.Intn(4)
	for i := 0; i < n && g.budget > 0; i++ {
		stmts = append(stmts, g.stmt(depth)...)
	}
	return stmts
}

// stmt generates one logical statement; loops expand to an initializer plus
// the loop itself, hence the slice result.
func (g *gen) stmt(depth int) []ast.Stmt {
	g.budget--
	r := g.rng.Float64()
	c := g.cfg
	switch {
	case depth < c.MaxDepth && r < c.PIf:
		var els []ast.Stmt
		if g.rng.Float64() < 0.6 {
			els = g.block(depth + 1)
		}
		return []ast.Stmt{&ast.IfStmt{Cond: g.cond(), Then: g.block(depth + 1), Else: els}}
	case depth < c.MaxDepth && r < c.PIf+c.PWhile:
		g.counters++
		ctr := fmt.Sprintf("c%d", g.counters)
		body := g.block(depth + 1)
		body = append(body, &ast.AssignStmt{Name: ctr, RHS: bin(token.PLUS, &ast.VarRef{Name: ctr}, &ast.IntLit{Value: 1})})
		return []ast.Stmt{
			&ast.AssignStmt{Name: ctr, RHS: &ast.IntLit{Value: 0}},
			&ast.WhileStmt{
				Cond: bin(token.LT, &ast.VarRef{Name: ctr}, &ast.IntLit{Value: int64(c.LoopBound)}),
				Body: body,
			},
		}
	case r < c.PIf+c.PWhile+c.PRead:
		return []ast.Stmt{&ast.ReadStmt{Name: g.pick()}}
	case r < c.PIf+c.PWhile+c.PRead+c.PPrint:
		return []ast.Stmt{&ast.PrintStmt{Arg: g.expr(2)}}
	default:
		return []ast.Stmt{&ast.AssignStmt{Name: g.pick(), RHS: g.expr(2)}}
	}
}

// ---------------------------------------------------------------------------
// Named scaling families

// StraightLine returns a program of n assignments over k variables followed
// by prints. All edges are cycle equivalent (one class).
func StraightLine(n, k int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	if k < 1 {
		k = 1
	}
	var b strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "read v%d;\n", i)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "v%d := v%d + %d;\n", rng.Intn(k), rng.Intn(k), rng.Intn(9))
	}
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "print v%d;\n", i)
	}
	return parser.MustParse(b.String())
}

// DiamondLadder returns the def-use blow-up family of experiment E10: k
// if-then-else diamonds over v variables. Each diamond conditionally
// redefines every variable, and every variable is used after every diamond,
// so def-use chain counts grow quadratically in k while SSA and DFG sizes
// stay linear.
func DiamondLadder(k, v int, seed int64) *ast.Program {
	if v < 1 {
		v = 1
	}
	var b strings.Builder
	b.WriteString("read p;\n")
	for j := 0; j < v; j++ {
		fmt.Fprintf(&b, "read x%d;\n", j)
	}
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "if (p == %d) {\n", i)
		for j := 0; j < v; j++ {
			fmt.Fprintf(&b, "  x%d := x%d + %d;\n", j, j, i+1)
		}
		b.WriteString("}\n")
		for j := 0; j < v; j++ {
			fmt.Fprintf(&b, "print x%d;\n", j)
		}
	}
	return parser.MustParse(b.String())
}

// LoopNest returns depth-nested bounded loops each containing width simple
// assignments; used for region and SSA benches.
func LoopNest(depth, width int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("read a;\n")
	var open func(d int)
	open = func(d int) {
		if d == 0 {
			for i := 0; i < width; i++ {
				fmt.Fprintf(&b, "a := a + %d;\n", rng.Intn(9))
			}
			return
		}
		fmt.Fprintf(&b, "i%d := 0;\nwhile (i%d < 3) {\n", d, d)
		open(d - 1)
		fmt.Fprintf(&b, "i%d := i%d + 1;\n}\n", d, d)
	}
	open(depth)
	b.WriteString("print a;\n")
	return parser.MustParse(b.String())
}

// WideSwitch returns the constant-propagation V-sweep family of experiment
// E4: v variables assigned constants up front, a chain of n conditionals
// that shuffle unrelated variables, and uses of every variable at the end.
// The CFG algorithm must drag v-wide vectors through the whole chain; the
// DFG algorithm touches each dependence once.
func WideSwitch(n, v int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	if v < 2 {
		v = 2
	}
	var b strings.Builder
	b.WriteString("read p;\n")
	for j := 0; j < v; j++ {
		fmt.Fprintf(&b, "x%d := %d;\n", j, j%7)
	}
	for i := 0; i < n; i++ {
		j := rng.Intn(v)
		fmt.Fprintf(&b, "if (p == %d) { y := x%d + 1; } else { y := x%d + 2; }\n", i, j, j)
	}
	for j := 0; j < v; j++ {
		fmt.Fprintf(&b, "print x%d;\n", j)
	}
	b.WriteString("print y;\n")
	return parser.MustParse(b.String())
}

// Wide returns a breadth-heavy structured program of roughly n statements:
// a flat fan of sibling single-entry single-exit blocks at the top level,
// each a small if-diamond plus a bounded loop over its own variable, with
// nesting never deeper than one level. The program structure tree is wide
// and shallow and the variable set grows with the sibling count, which is
// exactly the shape the region-parallel DFG builder and word-partitioned
// solvers distribute best: one independent unit of work per sibling. The
// complement of LoopNest (deep, narrow) in the scaling experiments.
func Wide(n int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	// Each sibling block below contributes ~8 statements.
	siblings := n / 8
	if siblings < 1 {
		siblings = 1
	}
	var b strings.Builder
	b.WriteString("read p;\ns := 0;\n")
	for i := 0; i < siblings; i++ {
		fmt.Fprintf(&b, "w%d := %d;\n", i, rng.Intn(9))
		fmt.Fprintf(&b, "if (p > %d) { w%d := w%d + %d; } else { w%d := w%d - %d; }\n",
			i, i, i, 1+rng.Intn(5), i, i, 1+rng.Intn(5))
		fmt.Fprintf(&b, "k%d := 0;\n", i)
		fmt.Fprintf(&b, "while (k%d < 2) { w%d := w%d * 2 + 1; k%d := k%d + 1; }\n", i, i, i, i, i)
		fmt.Fprintf(&b, "s := s + w%d;\n", i)
	}
	b.WriteString("print s;\n")
	return parser.MustParse(b.String())
}

// GotoMess returns an unstructured program with n guarded backward jumps
// and forward jumps, exercising irreducible control flow. All jumps are
// bounded by counters so the program terminates.
func GotoMess(n int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("read a;\ng := 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "label L%d:\n", i)
		fmt.Fprintf(&b, "a := a + %d;\n", rng.Intn(5))
		if i > 0 && rng.Float64() < 0.5 {
			// guarded backward jump
			back := rng.Intn(i)
			fmt.Fprintf(&b, "g := g + 1;\nif (g < %d) { goto L%d; }\n", 2+rng.Intn(3), back)
		}
		if i+2 < n && rng.Float64() < 0.3 {
			// forward jump skipping the next label
			fmt.Fprintf(&b, "if (a == %d) { goto L%d; }\n", rng.Intn(50), i+2)
		}
	}
	b.WriteString("print a;\nprint g;\n")
	return parser.MustParse(b.String())
}

// Irreducible returns a goto-heavy program of n units, each a loop with two
// entry points — the classic irreducible shape no amount of node splitting
// avoidance can reduce. Each unit is
//
//	gI := 0;
//	if (cond) { goto B_I; }   // entry 1: jumps into the loop's middle
//	label A_I:                // entry 2: fallthrough, also the back-edge target
//	  ...
//	label B_I:
//	  gI := gI + 1;
//	  if (gI < bound) { goto A_I; }
//
// so the cycle {A_I..B_I} is entered both at A_I and at B_I from outside.
// The bytecode frontend compiles each unit to a CFG whose loop has two
// external entries, which is what the cycle-equivalence and region
// machinery must survive; a T1/T2 reduction test pins the irreducibility.
// Loops are counter-bounded, so every program terminates.
func Irreducible(n int, seed int64) *ast.Program {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("read a;\n")
	for i := 0; i < n; i++ {
		bound := 2 + rng.Intn(3)
		fmt.Fprintf(&b, "g%d := 0;\n", i)
		fmt.Fprintf(&b, "if (a %% %d == %d) { goto B%d; }\n", 2+rng.Intn(3), rng.Intn(2), i)
		fmt.Fprintf(&b, "label A%d:\n", i)
		fmt.Fprintf(&b, "a := a + %d;\n", 1+rng.Intn(4))
		fmt.Fprintf(&b, "label B%d:\n", i)
		fmt.Fprintf(&b, "g%d := g%d + 1;\n", i, i)
		fmt.Fprintf(&b, "a := a - %d;\n", rng.Intn(3))
		fmt.Fprintf(&b, "if (g%d < %d) { goto A%d; }\n", i, bound, i)
		fmt.Fprintf(&b, "print a;\nprint g%d;\n", i)
	}
	b.WriteString("print a;\n")
	return parser.MustParse(b.String())
}

// Mixed returns a deterministic random structured program of roughly n
// statements (the usual entry point for differential tests).
func Mixed(n int, seed int64) *ast.Program {
	return Generate(DefaultConfig(n, seed))
}
