package workload

import (
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/interp"
	"dfg/internal/lang/ast"
)

// buildOK lowers a generated program and fails on invalid CFGs.
func buildOK(t *testing.T, p *ast.Program, label string) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatalf("%s: %v\nprogram:\n%s", label, err, p)
	}
	return g
}

func TestMixedDeterministic(t *testing.T) {
	a := Mixed(40, 7).String()
	b := Mixed(40, 7).String()
	if a != b {
		t.Error("same seed must give the same program")
	}
	c := Mixed(40, 8).String()
	if a == c {
		t.Error("different seeds should give different programs")
	}
}

func TestMixedProgramsValidAndTerminating(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g := buildOK(t, Mixed(50, seed), "mixed")
		res, err := interp.Run(g, []int64{5, 3, 8, 1, 9, 2, 7, 4}, 500000)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			continue
		}
		if len(res.Output) == 0 {
			t.Errorf("seed %d: no observable output", seed)
		}
	}
}

func TestMixedHasControlFlow(t *testing.T) {
	// Aggregate over seeds: generated programs must contain branches and
	// loops (this is what differential tests rely on).
	switches, merges := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		g := buildOK(t, Mixed(60, seed), "mixed")
		for _, nd := range g.Nodes {
			switch nd.Kind {
			case cfg.KindSwitch:
				switches++
			case cfg.KindMerge:
				merges++
			}
		}
	}
	if switches < 10 || merges < 10 {
		t.Errorf("workloads too flat: %d switches, %d merges over 10 seeds", switches, merges)
	}
}

func TestMixedScalesWithBudget(t *testing.T) {
	small := buildOK(t, Mixed(20, 3), "small")
	large := buildOK(t, Mixed(200, 3), "large")
	if len(large.LiveEdges()) < 3*len(small.LiveEdges()) {
		t.Errorf("budget not respected: %d vs %d edges",
			len(small.LiveEdges()), len(large.LiveEdges()))
	}
}

func TestStraightLine(t *testing.T) {
	g := buildOK(t, StraightLine(50, 5, 1), "straight")
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindSwitch || nd.Kind == cfg.KindMerge {
			t.Fatal("straight-line program contains control flow")
		}
	}
	if _, err := interp.Run(g, []int64{1, 2, 3, 4, 5}, 10000); err != nil {
		t.Error(err)
	}
}

func TestDiamondLadderShape(t *testing.T) {
	g := buildOK(t, DiamondLadder(6, 3, 1), "ladder")
	switches := 0
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindSwitch {
			switches++
		}
	}
	if switches != 6 {
		t.Errorf("switches = %d, want 6 (one per diamond)", switches)
	}
}

func TestLoopNestTerminates(t *testing.T) {
	g := buildOK(t, LoopNest(3, 4, 1), "loopnest")
	res, err := interp.Run(g, []int64{2}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 27 {
		t.Errorf("nest of depth 3 should run >= 27 body steps, got %d total", res.Steps)
	}
}

func TestWideSwitchVariableCount(t *testing.T) {
	p := WideSwitch(10, 16, 1)
	g := buildOK(t, p, "wideswitch")
	// 16 x-variables plus p and y.
	if len(g.VarNames) != 18 {
		t.Errorf("VarNames = %d, want 18", len(g.VarNames))
	}
	if _, err := interp.Run(g, []int64{3}, 100000); err != nil {
		t.Error(err)
	}
}

func TestWideShapeAndTermination(t *testing.T) {
	p := Wide(400, 1)
	if a, b := p.String(), Wide(400, 1).String(); a != b {
		t.Error("same seed must give the same program")
	}
	g := buildOK(t, p, "wide")
	// The fan must be genuinely wide: one diamond and one loop per sibling,
	// so 400/8 = 50 siblings mean >= 100 switch nodes.
	switches := 0
	for _, nd := range g.Nodes {
		if nd.Kind == cfg.KindSwitch {
			switches++
		}
	}
	if switches < 100 {
		t.Errorf("wide program too narrow: %d switches, want >= 100", switches)
	}
	// Variable breadth grows with the sibling count (w_i, k_i, p, s).
	if len(g.VarNames) < 100 {
		t.Errorf("VarNames = %d, want >= 100", len(g.VarNames))
	}
	res, err := interp.Run(g, []int64{7}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) == 0 {
		t.Error("no observable output")
	}
}

func TestGotoMessValidAndTerminating(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := buildOK(t, GotoMess(10, seed), "gotomess")
		if _, err := interp.Run(g, []int64{4}, 500000); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestGotoMessIsUnstructured(t *testing.T) {
	// At least one seed must produce a merge with an in-edge from a goto
	// (in-degree >= 2 at a label).
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		g := buildOK(t, GotoMess(10, seed), "gotomess")
		for _, nd := range g.Nodes {
			if nd.Kind == cfg.KindMerge && len(g.InEdges(nd.ID)) >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("no unstructured merges found in any seed")
	}
}

func TestGenerateRespectsVarFloor(t *testing.T) {
	c := DefaultConfig(10, 1)
	c.Vars = 0 // must be clamped to >= 1
	p := Generate(c)
	if len(p.Vars()) == 0 {
		t.Error("no variables generated")
	}
}
