package xform

import (
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/interp"
	"dfg/internal/workload"
)

// BenchmarkCheckProgram measures the oracle cost for one medium program
// against each pipeline (build chain + 6 input vectors × chain length runs +
// invariant comparison). This is the per-program unit cost of the sweep.
func BenchmarkCheckProgram(b *testing.B) {
	g, err := cfg.Build(workload.Mixed(12, 7))
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range Pipelines() {
		b.Run(p.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rep := Check(g, p, Config{}); !rep.OK {
					b.Fatalf("divergence in benchmark corpus: %+v", rep.FirstDivergence())
				}
			}
		})
	}
}

// BenchmarkCheckAllPipelines is the full per-program cost: every standard
// pipeline on one program, the unit the 500+ pair sweep repeats.
func BenchmarkCheckAllPipelines(b *testing.B) {
	g, err := cfg.Build(workload.Mixed(12, 7))
	if err != nil {
		b.Fatal(err)
	}
	pipes := Pipelines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pipes {
			if rep := Check(g, p, Config{}); !rep.OK {
				b.Fatalf("divergence in benchmark corpus: %+v", rep.FirstDivergence())
			}
		}
	}
}

// BenchmarkRunCountingOverhead measures what per-expression evaluation
// counting adds over the plain interpreter — the cost the oracle pays for
// the metamorphic invariants (the fast path stays allocation-free).
func BenchmarkRunCountingOverhead(b *testing.B) {
	g, err := cfg.Build(workload.Mixed(15, 1))
	if err != nil {
		b.Fatal(err)
	}
	inputs := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interp.Run(g, inputs, 500000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("counting", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interp.RunCounting(g, inputs, 500000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiagnose measures the minimizing report on a program with an
// injected divergence (the broken pipeline from oracle_test.go).
func BenchmarkDiagnose(b *testing.B) {
	src := "read a; read b; x := 1; print x; print a + b; print b;"
	p := brokenPipeline()
	for i := 0; i < b.N; i++ {
		if rep := Diagnose(src, p, Config{}); rep == "" {
			b.Fatal("expected a divergence report")
		}
	}
}
