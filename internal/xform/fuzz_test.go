package xform

import (
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/lang/parser"
)

// fuzzSeeds is the corpus FuzzTransform grows from: each shape exercises a
// different optimizer corner (CSE, partial redundancy, constant branches
// around gotos, copies under redefinition, loops, traps).
var fuzzSeeds = []string{
	"read a; read b; z := a + b; w := a + b; print z; print w;",
	"read x; read p; if (p > 0) { u := x + 1; print u; } w := x + 1; print w;",
	"c := 0; if (c == 1) { goto L1; } print 1; label L1: print 2;",
	"read x; read y; x := x + y; z := x + y; print z; print x;",
	"read a; y := a; i := 0; while (i < 3) { print y; a := a + 1; i := i + 1; } print a;",
	"read a; read b; x := a / b; print x;",
	"g := 0; label top: g := g + 1; print g; if (g < 3) { goto top; } print g + g;",
	"read n; i := 0; s := 0; while (i < n) { s := s + (i * 2); i := i + 1; } print s;",
	"A := (b && true); b := (p < 0);",
	"print 7; u := (b || b); w := (b || b); b := (p < 0);",
}

// FuzzTransform feeds arbitrary program text through every optimizer
// pipeline and fails on any differential or metamorphic divergence. Inputs
// that do not parse or do not build a CFG are skipped — the oracle judges
// the optimizers, not the front end. The step budget is kept small so the
// fuzzer spends its time on program shapes, not on long loops.
func FuzzTransform(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	cfgFuzz := Config{MaxSteps: 20000}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // oversized inputs only slow the mutator down
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		g, err := cfg.Build(prog)
		if err != nil {
			return
		}
		for _, p := range Pipelines() {
			if rep := Check(g, p, cfgFuzz); !rep.OK {
				t.Fatalf("pipeline %s diverged:\n%s", p.Name, Diagnose(src, p, cfgFuzz))
			}
		}
	})
}
