package xform

import (
	"fmt"
	"strings"

	"dfg/internal/cfg"
	"dfg/internal/lang/ast"
	"dfg/internal/lang/parser"
)

// Minimize delta-debugs prog at statement granularity: it repeatedly tries
// to delete a statement or to hoist the body of an if/while in place of the
// whole construct, keeping an edit whenever keep still reports the program
// as interesting (for Diagnose: "still diverges"). Edits that make the
// program invalid (e.g. deleting a label a goto still targets) are rejected
// by keep itself, which is expected to re-build the program. The result
// shares unmodified AST nodes with the input; neither is ever mutated.
func Minimize(prog *ast.Program, keep func(*ast.Program) bool) *ast.Program {
	if !keep(prog) {
		return prog
	}
	for changed := true; changed; {
		changed = false
		n := countStmts(prog.Stmts)
		for i := 0; i < n; i++ {
			for mode := editDelete; mode <= editHoistBody; mode++ {
				idx := i
				stmts, ok := editStmts(prog.Stmts, &idx, mode)
				if !ok {
					continue
				}
				cand := &ast.Program{Stmts: stmts}
				if keep(cand) {
					prog = cand
					changed = true
					n = countStmts(prog.Stmts)
					i-- // re-try the same position: a new statement slid in
					break
				}
			}
		}
	}
	return prog
}

// edit modes, tried in order: plain deletion first (biggest shrink), then
// hoisting a branch or body over its construct.
const (
	editDelete    = iota // remove the statement entirely
	editHoistThen        // if -> its then-block
	editHoistElse        // if -> its else-block
	editHoistBody        // while -> its body (run once)
)

// countStmts counts statements in pre-order, descending into if/while.
func countStmts(ss []ast.Stmt) int {
	n := 0
	for _, s := range ss {
		n++
		switch s := s.(type) {
		case *ast.IfStmt:
			n += countStmts(s.Then) + countStmts(s.Else)
		case *ast.WhileStmt:
			n += countStmts(s.Body)
		}
	}
	return n
}

// editStmts rebuilds ss with the edit applied at pre-order index *idx. The
// index counts down as statements are passed (a negative value means it has
// been consumed). It reports whether the edit was applicable at that
// position; an inapplicable mode (e.g. hoist-then on an assignment) leaves
// the list unchanged and returns false.
func editStmts(ss []ast.Stmt, idx *int, mode int) ([]ast.Stmt, bool) {
	out := make([]ast.Stmt, 0, len(ss))
	applied := false
	for _, s := range ss {
		if applied || *idx < 0 {
			out = append(out, s)
			continue
		}
		if *idx == 0 {
			*idx = -1 // target found; consume the index
			switch mode {
			case editDelete:
				applied = true
				continue // drop s
			case editHoistThen:
				if t, ok := s.(*ast.IfStmt); ok && len(t.Then) > 0 {
					out = append(out, t.Then...)
					applied = true
					continue
				}
			case editHoistElse:
				if t, ok := s.(*ast.IfStmt); ok && len(t.Else) > 0 {
					out = append(out, t.Else...)
					applied = true
					continue
				}
			case editHoistBody:
				if t, ok := s.(*ast.WhileStmt); ok && len(t.Body) > 0 {
					out = append(out, t.Body...)
					applied = true
					continue
				}
			}
			out = append(out, s) // mode not applicable at this statement
			continue
		}
		*idx-- // s itself occupies one pre-order slot
		switch t := s.(type) {
		case *ast.IfStmt:
			if th, ok := editStmts(t.Then, idx, mode); ok {
				out = append(out, &ast.IfStmt{Cond: t.Cond, Then: th, Else: t.Else, Pos: t.Pos})
				applied = true
				continue
			}
			if el, ok := editStmts(t.Else, idx, mode); ok {
				out = append(out, &ast.IfStmt{Cond: t.Cond, Then: t.Then, Else: el, Pos: t.Pos})
				applied = true
				continue
			}
		case *ast.WhileStmt:
			if body, ok := editStmts(t.Body, idx, mode); ok {
				out = append(out, &ast.WhileStmt{Cond: t.Cond, Body: body, Pos: t.Pos})
				applied = true
				continue
			}
		}
		out = append(out, s)
	}
	return out, applied
}

// Diagnose builds the full divergence report for a program source against
// one pipeline: it minimizes the program while the divergence persists, then
// renders the minimized source, the transformed graph, the first diverging
// input, and the violated property. Returns "" when the program and
// pipeline agree (nothing to diagnose).
func Diagnose(src string, p Pipeline, c Config) string {
	prog, err := parser.Parse(src)
	if err != nil {
		return fmt.Sprintf("diagnose: parse failed: %v\nsource:\n%s", err, src)
	}
	g, err := cfg.Build(prog)
	if err != nil {
		return fmt.Sprintf("diagnose: cfg build failed: %v\nsource:\n%s", err, src)
	}
	if Check(g, p, c).OK {
		return ""
	}

	diverges := func(pr *ast.Program) bool {
		gg, err := cfg.Build(pr)
		if err != nil {
			return false
		}
		return !Check(gg, p, c).OK
	}
	min := Minimize(prog, diverges)
	mg := cfg.MustBuild(min)
	rep := Check(mg, p, c)

	var b strings.Builder
	fmt.Fprintf(&b, "=== transformation oracle report (pipeline %s) ===\n", p.Name)
	fmt.Fprintf(&b, "--- minimized program ---\n%s", min)
	if rep.BuildErr != "" {
		fmt.Fprintf(&b, "--- transformation failed ---\n%s\n", rep.BuildErr)
		return b.String()
	}
	if opt, err := p.ApplyAll(mg); err == nil {
		fmt.Fprintf(&b, "--- transformed cfg ---\n%s", opt)
	}
	if d := rep.FirstDivergence(); d != nil {
		fmt.Fprintf(&b, "--- first diverging input: %v ---\n", d.Input)
		fmt.Fprintf(&b, "original: %s, transformed: %s\n", d.OrigStatus, d.OptStatus)
		fmt.Fprintf(&b, "divergence: %s\n", d.Divergence)
	}
	fmt.Fprintf(&b, "--- original cfg ---\n%s", mg)
	return b.String()
}
