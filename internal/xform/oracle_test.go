package xform

import (
	"strings"
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/epr"
	"dfg/internal/interp"
	"dfg/internal/lang/ast"
	"dfg/internal/lang/parser"
	"dfg/internal/lang/token"
)

// brokenPipeline rewrites the first print of a PLUS into a MINUS — a
// deliberately wrong transformation the oracle must catch.
func brokenPipeline() Pipeline {
	return Pipeline{Name: "broken", Stages: []Stage{{
		Name: "broken",
		Apply: func(g *cfg.Graph) (*cfg.Graph, error) {
			out := epr.Clone(g)
			for _, nd := range out.Nodes {
				if nd.Kind != cfg.KindPrint {
					continue
				}
				if b, ok := nd.Expr.(*ast.BinaryExpr); ok && b.Op == token.PLUS {
					b.Op = token.MINUS
					break
				}
			}
			return out, nil
		},
	}}}
}

// TestOracleCatchesBrokenTransform: the differential harness must flag the
// wrong rewrite and Diagnose must minimize the program and name the first
// diverging input.
func TestOracleCatchesBrokenTransform(t *testing.T) {
	src := "read a; read b; x := 1; print x; print a + b; print b;"
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.MustBuild(prog)
	rep := Check(g, brokenPipeline(), Config{})
	if rep.OK {
		t.Fatal("oracle accepted a wrong transformation")
	}
	d := rep.FirstDivergence()
	if d == nil || !strings.Contains(d.Divergence, "diverging output") {
		t.Fatalf("divergence not classified as an output mismatch: %+v", d)
	}

	report := Diagnose(src, brokenPipeline(), Config{})
	if report == "" {
		t.Fatal("Diagnose returned empty report for a diverging program")
	}
	// Minimization must strip the unrelated statements; print (a + b) is the
	// essential one.
	if !strings.Contains(report, "print (a + b);") {
		t.Errorf("minimized program lost the essential statement:\n%s", report)
	}
	if strings.Contains(report, "print x") {
		t.Errorf("minimization kept an irrelevant statement:\n%s", report)
	}
	if !strings.Contains(report, "first diverging input") {
		t.Errorf("report missing the diverging input:\n%s", report)
	}
}

// TestCompareStageClasses covers each divergence class compareStage reports,
// with synthetic run results.
func TestCompareStageClasses(t *testing.T) {
	mk := func(binops int, outs []int64, evals map[string]int) *interp.Result {
		r := &interp.Result{BinOps: binops, ExprEvals: evals}
		for _, v := range outs {
			r.Output = append(r.Output, interp.IntVal(v))
		}
		return r
	}
	plain := Stage{}
	cases := []struct {
		name   string
		ro, rx *interp.Result
		so, sx Status
		st     Stage
		cands  []string
		want   string
	}{
		{"agree", mk(3, []int64{1}, nil), mk(2, []int64{1}, nil), StatusOK, StatusOK, plain, nil, ""},
		{"introduced trap", mk(0, []int64{1}, nil), mk(0, nil, nil), StatusOK, StatusTrap, plain, nil, "introduced a trap"},
		{"suppressed trap", mk(0, nil, nil), mk(0, nil, nil), StatusTrap, StatusOK, plain, nil, "termination mismatch"},
		{"output value", mk(1, []int64{1, 2}, nil), mk(1, []int64{1, 3}, nil), StatusOK, StatusOK, plain, nil, "diverging output at index 1"},
		{"output length", mk(1, []int64{1, 2}, nil), mk(1, []int64{1}, nil), StatusOK, StatusOK, plain, nil, "output length mismatch"},
		{"binop increase", mk(1, nil, nil), mk(2, nil, nil), StatusOK, StatusOK, plain, nil, "operator count increased"},
		{"binop exact", mk(3, nil, nil), mk(2, nil, nil), StatusOK, StatusOK, Stage{BinopsEqual: true}, nil, "count-preserving"},
		{"down-safety", mk(5, nil, map[string]int{"(a + b)": 1}), mk(5, nil, map[string]int{"(a + b)": 2}),
			StatusOK, StatusOK, Stage{EPR: true}, []string{"(a + b)"}, "down-safety violated"},
		{"both budget", mk(9, []int64{5}, nil), mk(9, []int64{6}, nil), StatusBudget, StatusBudget, plain, nil, ""},
		{"trap prefix ok", mk(1, []int64{4}, nil), mk(1, []int64{4}, nil), StatusTrap, StatusTrap, plain, nil, ""},
	}
	for _, tc := range cases {
		got := compareStage(tc.ro, tc.so, tc.rx, tc.sx, tc.st, tc.cands)
		if tc.want == "" && got != "" {
			t.Errorf("%s: unexpected divergence %q", tc.name, got)
		}
		if tc.want != "" && !strings.Contains(got, tc.want) {
			t.Errorf("%s: divergence %q does not mention %q", tc.name, got, tc.want)
		}
	}
}

// TestMinimizeHoistsConstructs: the minimizer must be able to replace an if
// by its branch and a while by its body when the divergence survives.
func TestMinimizeHoistsConstructs(t *testing.T) {
	src := `
		read a; read b;
		if (a > 0) { print a + b; } else { print 0; }
		i := 0;
		while (i < 2) { i := i + 1; }
		print 9;`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Keep: "program still contains print (a + b)" — the minimum under the
	// hoist edits is that single statement.
	keep := func(p *ast.Program) bool {
		return strings.Contains(p.String(), "print (a + b);")
	}
	min := Minimize(prog, keep)
	got := min.String()
	if strings.Contains(got, "if") || strings.Contains(got, "while") {
		t.Errorf("constructs not hoisted away:\n%s", got)
	}
	if want := "print (a + b);\n"; got != want {
		t.Errorf("minimized to %q, want %q", got, want)
	}
}
