package xform

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/lang/parser"
)

// hostileProgram generates programs concentrated on the optimizers' known
// hard corners: self-redefining assignments whose RHS is itself a candidate
// expression (x := x + y), constant predicates guarding gotos, copies whose
// source is redefined inside loops, nested redundancies, and use-before-def
// booleans (the variable's only definition is a late boolean assignment, so
// earlier uses read integer 0 and trap). The structured workload generators
// rarely produce these shapes, so the sweep includes a dedicated family.
func hostileProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	vars := []string{"a", "b", "x", "y"}
	pick := func() string { return vars[rng.Intn(len(vars))] }
	var b strings.Builder
	b.WriteString("read a;\nread b;\nx := a + b;\ny := 1;\ng := 0;\n")
	n := 6 + rng.Intn(8)
	labels := 0
	var late []string
	for i := 0; i < n; i++ {
		switch rng.Intn(15) {
		case 0: // self-redefining candidate
			v := pick()
			fmt.Fprintf(&b, "%s := %s + %s;\n", v, v, pick())
		case 1: // plain redundancy material
			fmt.Fprintf(&b, "%s := %s + %s;\n", pick(), pick(), pick())
		case 2: // copy
			fmt.Fprintf(&b, "%s := %s;\n", pick(), pick())
		case 3: // constant predicate branch with a goto to a later label
			labels++
			fmt.Fprintf(&b, "c%d := %d;\n", i, rng.Intn(2))
			fmt.Fprintf(&b, "if (c%d == 1) { %s := %s + %s; goto L%d; }\n", i, pick(), pick(), pick(), labels)
			fmt.Fprintf(&b, "%s := %s + %s;\nlabel L%d:\n", pick(), pick(), pick(), labels)
		case 4: // bounded loop with a copy and a redefinition of its source
			fmt.Fprintf(&b, "k%d := 0;\nwhile (k%d < 3) {\n", i, i)
			fmt.Fprintf(&b, "  %s := %s;\n", pick(), pick())
			fmt.Fprintf(&b, "  %s := %s + %s;\n", pick(), pick(), pick())
			fmt.Fprintf(&b, "  k%d := k%d + 1;\n}\n", i, i)
		case 5: // if-shaped partial redundancy
			fmt.Fprintf(&b, "if (%s > %d) { %s := %s + %s; }\n", pick(), rng.Intn(5), pick(), pick(), pick())
			fmt.Fprintf(&b, "%s := %s + %s;\n", pick(), pick(), pick())
		case 6: // print observation point
			fmt.Fprintf(&b, "print %s + %s;\n", pick(), pick())
		case 7: // read (runtime-unknown refresh)
			fmt.Fprintf(&b, "read %s;\n", pick())
		case 8: // nested candidate
			fmt.Fprintf(&b, "%s := (%s + %s) * (%s + %s);\n", pick(), pick(), pick(), pick(), pick())
		case 9: // possible trap: division/modulo by a runtime value
			op := "/"
			if rng.Intn(2) == 0 {
				op = "%"
			}
			fmt.Fprintf(&b, "%s := %s %s %s;\n", pick(), pick(), op, pick())
		case 10: // bounded backward goto: an irreducible-looking loop
			labels++
			fmt.Fprintf(&b, "label B%d:\n", labels)
			fmt.Fprintf(&b, "g := g + 1;\n%s := %s + %s;\n", pick(), pick(), pick())
			fmt.Fprintf(&b, "if (g < 3) { goto B%d; }\n", labels)
		case 11: // loop-invariant candidate inside a while
			fmt.Fprintf(&b, "k%d := 0;\nwhile (k%d < 3) {\n", i, i)
			fmt.Fprintf(&b, "  %s := %s + %s;\n", pick(), pick(), pick())
			fmt.Fprintf(&b, "  k%d := k%d + 1;\n}\n", i, i)
		case 12: // boolean-typed variable: later arithmetic on it traps
			fmt.Fprintf(&b, "%s := %s < %s;\n", pick(), pick(), pick())
		case 13: // use-before-def: boolean operators on a variable whose
			// only definition is emitted after the main body — until then
			// it reads as integer 0, so deleting or hoisting the use
			// changes where (or whether) the program traps
			v := fmt.Sprintf("d%d", len(late))
			late = append(late, v)
			switch rng.Intn(3) {
			case 0: // dead boolean use (dead-code-deletion bait)
				fmt.Fprintf(&b, "u%d := (%s && true);\n", i, v)
			case 1: // redundant pair (EPR hoisting bait)
				fmt.Fprintf(&b, "u%d := (%s || %s);\nw%d := (%s || %s);\n", i, v, v, i, v, v)
			default: // observation point just above the trapping use
				fmt.Fprintf(&b, "print %d;\nu%d := (%s || %s);\n", i, i, v, v)
			}
		default: // constant chain for constprop
			fmt.Fprintf(&b, "%s := %d;\n", pick(), rng.Intn(7))
		}
	}
	for j, v := range late {
		fmt.Fprintf(&b, "%s := (a < %d);\n", v, j)
	}
	for _, v := range vars {
		fmt.Fprintf(&b, "print %s;\n", v)
	}
	return b.String()
}

// TestHostileSweep runs the hostile family through every pipeline. Set
// XFORM_DEEP=<n> to mine a larger seed space (used for offline bug hunts;
// CI runs the default count).
func TestHostileSweep(t *testing.T) {
	count := 400
	if testing.Short() {
		count = 60
	}
	if n := os.Getenv("XFORM_DEEP"); n != "" {
		if v, err := strconv.Atoi(n); err == nil && v > 0 {
			count = v
		}
	}
	bad := 0
	for seed := 0; seed < count; seed++ {
		src := hostileProgram(int64(seed))
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		g, err := cfg.Build(prog)
		if err != nil {
			continue // e.g. a goto cycle that skips the tail; not a transform bug
		}
		for _, p := range Pipelines() {
			if rep := Check(g, p, Config{}); !rep.OK {
				bad++
				if bad <= 3 {
					t.Errorf("hostile seed %d × %s:\n%s", seed, p.Name, Diagnose(src, p, Config{}))
				}
			}
		}
	}
	if bad > 3 {
		t.Errorf("%d hostile divergences total (first 3 shown)", bad)
	}
}
