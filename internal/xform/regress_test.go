package xform

import (
	"strings"
	"testing"
)

// checkAllPipelines runs src through every standard pipeline and reports
// divergences through Diagnose.
func checkAllPipelines(t *testing.T, src string) {
	t.Helper()
	reps, err := CheckSource(src, Config{})
	if err != nil {
		t.Fatalf("front end rejected program: %v\n%s", err, src)
	}
	for _, rep := range reps {
		if !rep.OK {
			p, _ := PipelineByName(rep.Pipeline)
			t.Errorf("pipeline %s diverged:\n%s", rep.Pipeline, Diagnose(src, p, Config{}))
		}
	}
}

// TestRegressionDeadTypeErrorAssign: found by FuzzTransform (corpus entry
// 64d0b4e8d48fba48, minimized). The assignment A := (!0 * 0) traps with a
// type error (! applied to an integer); it is dead, and constprop's
// dead-assignment elimination used to delete it because mayTrap only knew
// about division and modulo — turning a trapping program into a successful
// one. Dead-code removal must keep assignments that are not provably
// type-safe.
func TestRegressionDeadTypeErrorAssign(t *testing.T) {
	checkAllPipelines(t, "A := (!0 * 0);")
}

// TestRegressionDeadTypeErrorFuzzInput is the unminimized fuzzer input for
// the same bug, kept verbatim as a second angle (the double read and the
// constant prints give the dead assignment live neighbours on both sides).
func TestRegressionDeadTypeErrorFuzzInput(t *testing.T) {
	checkAllPipelines(t, "read A;read A;A:=!0*0;A:=0*0;print 0;print 0;")
}

// TestRegressionHoistTypeErrorAboveObservation: the sibling bug in EPR. The
// candidate b + 1 is type-unsafe (b holds a boolean), and both paths below
// the print compute it, so busy placement used to insert the computation
// above print 0 — the transformed program trapped BEFORE printing, the
// original after. Candidate selection must reject expressions that are not
// provably type-safe, exactly as it rejects division.
func TestRegressionHoistTypeErrorAboveObservation(t *testing.T) {
	checkAllPipelines(t, `
		read p;
		b := p < 9;
		print 0;
		if (p > 0) { u := b + 1; print u; }
		w := b + 1;
		print w;`)
}

// TestRegressionBoolMixSweep: a fixed mini-corpus of boolean/integer mixes
// around the optimizers' rewrite rules (dead assignments, candidate
// hoisting, copy propagation of boolean-valued copies, constant branches on
// boolean variables).
func TestRegressionBoolMixSweep(t *testing.T) {
	srcs := []string{
		"x := 1 < 2; y := x; print y;",
		"x := 1 < 2; if (x) { print 1; } print 2;",
		"read a; b := a < 0; c := b; if (c) { print a + 1; } print a + 1;",
		"b := true; z := b + 1; print 7;",
		"read a; x := a == 0; y := x == false; if (y) { print a; }",
	}
	for _, src := range srcs {
		if !strings.Contains(src, ";") {
			t.Fatalf("malformed corpus entry %q", src)
		}
		checkAllPipelines(t, src)
	}
}
