package xform

import (
	"strings"
	"testing"
)

// checkAllPipelines runs src through every standard pipeline and reports
// divergences through Diagnose.
func checkAllPipelines(t *testing.T, src string) {
	t.Helper()
	reps, err := CheckSource(src, Config{})
	if err != nil {
		t.Fatalf("front end rejected program: %v\n%s", err, src)
	}
	for _, rep := range reps {
		if !rep.OK {
			p, _ := PipelineByName(rep.Pipeline)
			t.Errorf("pipeline %s diverged:\n%s", rep.Pipeline, Diagnose(src, p, Config{}))
		}
	}
}

// TestRegressionDeadTypeErrorAssign: found by FuzzTransform (corpus entry
// 64d0b4e8d48fba48, minimized). The assignment A := (!0 * 0) traps with a
// type error (! applied to an integer); it is dead, and constprop's
// dead-assignment elimination used to delete it because mayTrap only knew
// about division and modulo — turning a trapping program into a successful
// one. Dead-code removal must keep assignments that are not provably
// type-safe.
func TestRegressionDeadTypeErrorAssign(t *testing.T) {
	checkAllPipelines(t, "A := (!0 * 0);")
}

// TestRegressionDeadTypeErrorFuzzInput is the unminimized fuzzer input for
// the same bug, kept verbatim as a second angle (the double read and the
// constant prints give the dead assignment live neighbours on both sides).
func TestRegressionDeadTypeErrorFuzzInput(t *testing.T) {
	checkAllPipelines(t, "read A;read A;A:=!0*0;A:=0*0;print 0;print 0;")
}

// TestRegressionHoistTypeErrorAboveObservation: the sibling bug in EPR. The
// candidate b + 1 is type-unsafe (b holds a boolean), and both paths below
// the print compute it, so busy placement used to insert the computation
// above print 0 — the transformed program trapped BEFORE printing, the
// original after. Candidate selection must reject expressions that are not
// provably type-safe, exactly as it rejects division.
func TestRegressionHoistTypeErrorAboveObservation(t *testing.T) {
	checkAllPipelines(t, `
		read p;
		b := p < 9;
		print 0;
		if (p > 0) { u := b + 1; print u; }
		w := b + 1;
		print w;`)
}

// TestRegressionUseBeforeDefDeadAssign: found auditing cfg.VarTypes for
// flow sensitivity. b's only definition is boolean but comes AFTER the use:
// at A := (b && true) the uninitialized b reads as integer 0 and the &&
// traps. The flow-insensitive join typed b TypeBool, TypeSafe proved the
// dead assignment trap-free, and constprop deleted it — original traps,
// transformed succeeds. VarTypes now widens by TypeInt every variable that
// is not definitely assigned before some use.
func TestRegressionUseBeforeDefDeadAssign(t *testing.T) {
	checkAllPipelines(t, "A := (b && true); b := (p < 0);")
}

// TestRegressionUseBeforeDefHoist is the EPR face of the same hole: the
// candidate (b || b) passed TypeSafe because b's only (later) definition is
// boolean, and busy placement hoisted the computation above print 7 — the
// original prints 7 then traps, the transformed trapped before printing.
func TestRegressionUseBeforeDefHoist(t *testing.T) {
	checkAllPipelines(t, "print 7; u := (b || b); w := (b || b); b := (p < 0);")
}

// TestRegressionBoolMixSweep: a fixed mini-corpus of boolean/integer mixes
// around the optimizers' rewrite rules (dead assignments, candidate
// hoisting, copy propagation of boolean-valued copies, constant branches on
// boolean variables).
func TestRegressionBoolMixSweep(t *testing.T) {
	srcs := []string{
		"x := 1 < 2; y := x; print y;",
		"x := 1 < 2; if (x) { print 1; } print 2;",
		"read a; b := a < 0; c := b; if (c) { print a + 1; } print a + 1;",
		"b := true; z := b + 1; print 7;",
		"read a; x := a == 0; y := x == false; if (y) { print a; }",
		"u := (b && true); print 1; b := true; print b;",
		"read p; if (p > 0) { b := p < 5; } w := (b || b); print w;",
		"print 1; i := 0; while (i < 2) { v := (b && b); b := i == 0; i := i + 1; } print 2;",
	}
	for _, src := range srcs {
		if !strings.Contains(src, ";") {
			t.Fatalf("malformed corpus entry %q", src)
		}
		checkAllPipelines(t, src)
	}
}
