package xform

import (
	"fmt"
	"testing"

	"dfg/internal/cfg"
	"dfg/internal/lang/ast"
	"dfg/internal/workload"
)

// sweepProgram is one generated program with its provenance.
type sweepProgram struct {
	name string
	prog *ast.Program
}

// sweepPrograms returns the deterministic corpus for the transformation
// sweep: mixed structured programs, goto-heavy unstructured programs, and
// switch chains. Sizes are kept modest so the full sweep (programs ×
// pipelines × input vectors) stays inside the CI budget.
func sweepPrograms(short bool) []sweepProgram {
	var out []sweepProgram
	mixed, gotos, wide := 60, 20, 15
	if short {
		mixed, gotos, wide = 12, 5, 4
	}
	for seed := 0; seed < mixed; seed++ {
		out = append(out, sweepProgram{
			name: fmt.Sprintf("Mixed(12,%d)", seed),
			prog: workload.Mixed(12, int64(seed)),
		})
	}
	for seed := 0; seed < gotos; seed++ {
		out = append(out, sweepProgram{
			name: fmt.Sprintf("GotoMess(6,%d)", seed),
			prog: workload.GotoMess(6, int64(seed)),
		})
	}
	for seed := 0; seed < wide; seed++ {
		out = append(out, sweepProgram{
			name: fmt.Sprintf("WideSwitch(8,4,%d)", seed),
			prog: workload.WideSwitch(8, 4, int64(seed)),
		})
	}
	return out
}

// TestTransformSweep is the acceptance sweep: every program × pipeline pair
// must pass output/read/termination equivalence and the metamorphic
// invariants on the default input sweep. In full mode it covers ≥500 pairs
// (95 programs × 7 pipelines); -short runs a smaller subset.
func TestTransformSweep(t *testing.T) {
	progs := sweepPrograms(testing.Short())
	pipes := Pipelines()
	pairs := 0
	for _, sp := range progs {
		g, err := cfg.Build(sp.prog)
		if err != nil {
			t.Fatalf("%s: cfg build: %v", sp.name, err)
		}
		for _, p := range pipes {
			pairs++
			rep := Check(g, p, Config{})
			if !rep.OK {
				t.Errorf("%s × %s diverged:\n%s", sp.name, p.Name, Diagnose(sp.prog.String(), p, Config{}))
			}
		}
	}
	if !testing.Short() && pairs < 500 {
		t.Fatalf("sweep covered only %d program × pipeline pairs, want >= 500", pairs)
	}
	t.Logf("sweep: %d program × pipeline pairs", pairs)
}
