// Package xform is the transformation-correctness harness: the differential
// and metamorphic oracle for the passes that rewrite programs
// (constprop.Apply, epr.Apply/ApplyPlaced, epr.CopyPropagate, and their
// compositions). Where internal/oracle asks "did DFG *construction* preserve
// the program's semantics?", xform asks the sharper transformation question:
// "is the *rewritten program* operationally equivalent to the original?" —
// the operational-equivalence approach of Ito's CFG/PDG equivalence work.
//
// For each optimizer pipeline, Check runs the original and the transformed
// CFG through the interpreter on a deterministic sweep of input vectors and
// demands:
//
//   - identical printed output sequences, including the prefix printed
//     before a trap;
//   - identical numbers of inputs consumed;
//   - identical termination status (success, trap, or step budget);
//
// plus the metamorphic invariants that make the oracle sharper than plain
// equivalence:
//
//   - EPR never increases the dynamic evaluation count of any candidate
//     expression of the original program on any input (down-safety:
//     insertions are paid for by deletions on every path);
//   - no pipeline increases the total dynamic operator count (EPR by
//     down-safety; constprop because folding and dead-code deletion only
//     remove evaluations);
//   - a transformation never introduces a trap the original did not hit
//     (EPR candidates are mayTrapExpr-free; constprop keeps trapping
//     assignments) — implied by the termination-status comparison but
//     reported distinctly because it is the invariant §5.2's down-safety
//     argument rests on.
//
// Divergences render through Diagnose, which delta-minimizes the program at
// statement granularity and reports the first diverging input — every bug
// the sweep finds during development is preserved as a regression test with
// its minimized program.
package xform

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dfg/internal/cfg"
	"dfg/internal/constprop"
	"dfg/internal/epr"
	"dfg/internal/interp"
	"dfg/internal/lang/parser"
)

// Transform rewrites a CFG into an optimized one, leaving the input graph
// unmodified (every pass in this repository clones first).
type Transform func(g *cfg.Graph) (*cfg.Graph, error)

// Stage is one pass inside a pipeline. Metamorphic invariants are stated
// per stage, against the graph the stage actually received — for a composed
// pipeline like copyprop→EPR the EPR candidate set is taken from the
// copy-propagated program, not the original (copy propagation deliberately
// renames expressions, so original-program candidates would be meaningless).
type Stage struct {
	Name  string
	Apply Transform
	// EPR marks stages running partial redundancy elimination: Check
	// verifies that no candidate expression of the stage's input program
	// is evaluated more often after the stage on any input.
	EPR bool
	// BinopsEqual demands the dynamic operator count be exactly preserved
	// (copy propagation renames operands but evaluates the same
	// operators); other stages may only decrease it.
	BinopsEqual bool
}

// Pipeline is one named optimizer composition under test.
type Pipeline struct {
	Name   string
	Stages []Stage
}

// applyConstprop runs the constant-propagation analysis (CFG algorithm) and
// the rewrite.
func applyConstprop(g *cfg.Graph) (*cfg.Graph, error) {
	return constprop.Apply(constprop.CFG(g))
}

func stageConstprop() Stage {
	return Stage{Name: "constprop", Apply: applyConstprop}
}

// stageConstpropPred is constprop with predicate refinement enabled — the
// `dfg -constprop -pred` path, which narrows facts below switches (x == 5 on
// the true side ⟹ x = 5) before rewriting.
func stageConstpropPred() Stage {
	return Stage{
		Name: "constprop-pred",
		Apply: func(g *cfg.Graph) (*cfg.Graph, error) {
			return constprop.Apply(constprop.CFGOpt(g, constprop.Options{Predicates: true}))
		},
	}
}

func stageEPR(name string, driver epr.Driver, placement epr.Placement) Stage {
	return Stage{
		Name: name,
		Apply: func(g *cfg.Graph) (*cfg.Graph, error) {
			out, _, err := epr.ApplyPlaced(g, driver, placement)
			return out, err
		},
		EPR: true,
	}
}

func stageCopyprop() Stage {
	return Stage{
		Name:        "copyprop",
		Apply:       func(g *cfg.Graph) (*cfg.Graph, error) { return epr.CopyPropagate(g), nil },
		BinopsEqual: true,
	}
}

// Pipelines returns the standard optimizer compositions the sweep exercises:
// constprop alone (with and without predicate refinement), EPR alone under
// both anticipatability drivers, lazy placement, EPR followed by constprop,
// and copy propagation followed by EPR (the §1 staging chain).
func Pipelines() []Pipeline {
	return []Pipeline{
		{Name: "constprop", Stages: []Stage{stageConstprop()}},
		{Name: "epr-cfg", Stages: []Stage{stageEPR("epr-cfg", epr.DriverCFG, epr.PlaceBusy)}},
		{Name: "epr-dfg", Stages: []Stage{stageEPR("epr-dfg", epr.DriverDFG, epr.PlaceBusy)}},
		{Name: "epr-lazy", Stages: []Stage{stageEPR("epr-lazy", epr.DriverCFG, epr.PlaceLazy)}},
		{Name: "epr+constprop", Stages: []Stage{stageEPR("epr-cfg", epr.DriverCFG, epr.PlaceBusy), stageConstprop()}},
		{Name: "copyprop+epr", Stages: []Stage{stageCopyprop(), stageEPR("epr-cfg", epr.DriverCFG, epr.PlaceBusy)}},
		{Name: "constprop-pred", Stages: []Stage{stageConstpropPred()}},
	}
}

// PipelineByName returns the standard pipeline with the given name.
func PipelineByName(name string) (Pipeline, bool) {
	for _, p := range Pipelines() {
		if p.Name == name {
			return p, true
		}
	}
	return Pipeline{}, false
}

// Config parameterizes one transformation check. The zero value uses the
// default input sweep and step budget.
type Config struct {
	// Inputs is the set of input vectors to run; nil means DefaultInputs.
	Inputs [][]int64
	// MaxSteps bounds each interpreter run (0 = 500,000). A run that
	// exceeds it is retried once with an 8x budget before the two sides'
	// termination statuses are compared, so a transformation is only
	// charged with non-termination if it blows the original's budget by 8x.
	MaxSteps int
}

// DefaultInputs returns the deterministic input sweep: vectors chosen to
// drive generated programs through different branches — zeros, small
// ascending, negatives, and wider spreads for switch-heavy programs. Reads
// beyond a vector's end yield 0, so one sweep serves programs with any
// number of read statements.
func DefaultInputs() [][]int64 {
	return [][]int64{
		{},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{0, 0, 1, 0, 2, 0, 3, 0},
		{-3, 7, -11, 5, 0, -2, 9, 1},
		{2, 2, 2, 2, 2, 2, 2, 2},
		{13, -40, 6, 100, -7, 3, 0, 55},
	}
}

// Status classifies how a run ended.
type Status int

// Statuses.
const (
	StatusOK     Status = iota // ran to the end node
	StatusTrap                 // runtime error (type error, division by zero)
	StatusBudget               // exceeded the step budget even after retry
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTrap:
		return "trap"
	}
	return "budget"
}

// CaseResult is the outcome of one input vector.
type CaseResult struct {
	Input      []int64 `json:"input"`
	OrigStatus string  `json:"orig_status"`
	OptStatus  string  `json:"opt_status"`
	// Divergence describes the first violated property; empty when the
	// case agrees.
	Divergence string `json:"divergence,omitempty"`
}

// Report is the outcome of checking one program against one pipeline.
type Report struct {
	Pipeline string       `json:"pipeline"`
	BuildErr string       `json:"build_err,omitempty"`
	Cases    []CaseResult `json:"cases"`
	OK       bool         `json:"ok"`
}

// FirstDivergence returns the first diverging case, or nil if the report is
// clean.
func (r *Report) FirstDivergence() *CaseResult {
	for i := range r.Cases {
		if r.Cases[i].Divergence != "" {
			return &r.Cases[i]
		}
	}
	return nil
}

// ApplyAll runs every stage of the pipeline in order and returns the final
// transformed graph. The input graph is not modified.
func (p Pipeline) ApplyAll(g *cfg.Graph) (*cfg.Graph, error) {
	cur := g
	for _, st := range p.Stages {
		out, err := st.Apply(cur)
		if err != nil {
			return nil, fmt.Errorf("stage %s: %w", st.Name, err)
		}
		cur = out
	}
	return cur, nil
}

// Check runs pipeline p over g and compares behaviour stage by stage on the
// configured input sweep: every consecutive pair of programs in the chain
// original → stage1 → … → stageN must agree on output, reads, and
// termination, and each stage must satisfy its metamorphic invariants
// against its own input program. The input graph is not modified. A stage
// that fails to produce a graph at all (or produces an invalid one) is
// reported as a build failure, not an error: a pass that rejects or
// corrupts a valid CFG is exactly what the oracle exists to catch.
func Check(g *cfg.Graph, p Pipeline, c Config) *Report {
	rep := &Report{Pipeline: p.Name, OK: true}
	inputs := c.Inputs
	if inputs == nil {
		inputs = DefaultInputs()
	}
	maxSteps := c.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 500_000
	}

	// Build the chain of graphs, one per stage boundary.
	graphs := []*cfg.Graph{g}
	for _, st := range p.Stages {
		out, err := st.Apply(graphs[len(graphs)-1])
		if err != nil {
			rep.BuildErr = fmt.Sprintf("stage %s: %v", st.Name, err)
			rep.OK = false
			return rep
		}
		if verr := out.Validate(); verr != nil {
			rep.BuildErr = fmt.Sprintf("stage %s produced an invalid graph: %v", st.Name, verr)
			rep.OK = false
			return rep
		}
		graphs = append(graphs, out)
	}

	// Candidate expressions per EPR stage, taken from the stage's input.
	cands := make([][]string, len(p.Stages))
	for i, st := range p.Stages {
		if !st.EPR {
			continue
		}
		for _, e := range epr.CandidateExprs(graphs[i]) {
			cands[i] = append(cands[i], e.String())
		}
	}

	for _, in := range inputs {
		cr := CaseResult{Input: in}
		results := make([]*interp.Result, len(graphs))
		statuses := make([]Status, len(graphs))
		for i, gr := range graphs {
			results[i], statuses[i] = runClassified(gr, in, maxSteps)
		}
		cr.OrigStatus = statuses[0].String()
		cr.OptStatus = statuses[len(statuses)-1].String()
		for i, st := range p.Stages {
			div := compareStage(results[i], statuses[i], results[i+1], statuses[i+1], st, cands[i])
			if div != "" {
				cr.Divergence = fmt.Sprintf("stage %s: %s", st.Name, div)
				rep.OK = false
				break
			}
		}
		rep.Cases = append(rep.Cases, cr)
	}
	return rep
}

// runClassified executes g, retrying once with an 8x budget if the step
// limit was the cause of failure.
func runClassified(g *cfg.Graph, in []int64, maxSteps int) (*interp.Result, Status) {
	res, err := interp.RunCounting(g, in, maxSteps)
	if err != nil && isBudget(err) {
		res, err = interp.RunCounting(g, in, 8*maxSteps)
	}
	switch {
	case err == nil:
		return res, StatusOK
	case isBudget(err):
		return res, StatusBudget
	default:
		return res, StatusTrap
	}
}

// isBudget reports whether a run failed on step-budget exhaustion rather
// than a trap, via the interpreter's typed sentinel.
func isBudget(err error) bool {
	return errors.Is(err, interp.ErrStepLimit)
}

// compareStage judges one stage's output run against its input run,
// returning a description of the first violated property ("" = agree).
func compareStage(ro *interp.Result, so Status, rx *interp.Result, sx Status, st Stage, cands []string) string {
	if so == StatusBudget && sx == StatusBudget {
		return "" // neither side terminates within 8x budget: nothing comparable
	}
	if so != sx {
		if so == StatusOK && sx == StatusTrap {
			return fmt.Sprintf("transformation introduced a trap: original succeeded, transformed failed after %d outputs", len(rx.Output))
		}
		return fmt.Sprintf("termination mismatch: original %s, transformed %s", so, sx)
	}
	// Same status (ok or trap): output prefixes are comparable — CFG
	// execution is sequential on both sides, so even the output printed
	// before a trap must match.
	oo, xo := ro.Outputs(), rx.Outputs()
	for i := 0; i < len(oo) && i < len(xo); i++ {
		if oo[i] != xo[i] {
			return fmt.Sprintf("first diverging output at index %d: original printed %s, transformed printed %s", i, oo[i], xo[i])
		}
	}
	if len(oo) != len(xo) {
		return fmt.Sprintf("output length mismatch: original printed %d values, transformed printed %d", len(oo), len(xo))
	}
	if ro.Reads != rx.Reads {
		return fmt.Sprintf("inputs consumed mismatch: original read %d, transformed read %d", ro.Reads, rx.Reads)
	}
	if so != StatusOK {
		return "" // both trapped at the same observable point
	}
	// Metamorphic invariants (only meaningful on complete runs).
	if st.BinopsEqual && rx.BinOps != ro.BinOps {
		return fmt.Sprintf("operator count changed by a count-preserving pass: %d -> %d", ro.BinOps, rx.BinOps)
	}
	if rx.BinOps > ro.BinOps {
		return fmt.Sprintf("operator count increased: input evaluated %d, output %d", ro.BinOps, rx.BinOps)
	}
	for _, cand := range cands {
		if rx.ExprEvals[cand] > ro.ExprEvals[cand] {
			return fmt.Sprintf("candidate %q evaluated more often after EPR: %d -> %d (down-safety violated)",
				cand, ro.ExprEvals[cand], rx.ExprEvals[cand])
		}
	}
	return ""
}

// CheckSource parses src, builds its CFG, and checks it against every
// standard pipeline, returning the reports in pipeline order. Parse or CFG
// build failures return an error (the program is not valid input — that is
// the front end's problem, not the optimizers').
func CheckSource(src string, c Config) ([]*Report, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	var reps []*Report
	for _, p := range Pipelines() {
		reps = append(reps, Check(g, p, c))
	}
	return reps, nil
}

// Summary renders a one-line verdict per pipeline.
func Summary(reps []*Report) string {
	var b strings.Builder
	for _, r := range reps {
		verdict := "ok"
		if !r.OK {
			if r.BuildErr != "" {
				verdict = "BUILD FAILED: " + r.BuildErr
			} else if d := r.FirstDivergence(); d != nil {
				verdict = fmt.Sprintf("DIVERGED on input %v: %s", d.Input, d.Divergence)
			}
		}
		fmt.Fprintf(&b, "%-14s %s\n", r.Pipeline, verdict)
	}
	return b.String()
}

// sortedExprEvals renders an ExprEvals map deterministically (debug aid).
func sortedExprEvals(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s:%d", k, m[k])
	}
	return strings.Join(parts, " ")
}
