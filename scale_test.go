// Scale tests: the whole pipeline on large programs, guarding against
// stack overflows in the recursive constructions and quadratic blow-ups in
// the supposedly linear passes.
package main

import (
	"testing"
	"time"

	"dfg/internal/bccompile"
	"dfg/internal/bcfront"
	"dfg/internal/cdg"
	"dfg/internal/cfg"
	"dfg/internal/constprop"
	"dfg/internal/dfg"
	"dfg/internal/regions"
	"dfg/internal/ssa"
	"dfg/internal/workload"
)

func TestPipelineAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 4000
	start := time.Now()
	g, err := cfg.Build(workload.Mixed(n, 13))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CFG: %d nodes, %d edges (%.1fs)", g.NumNodes(), len(g.LiveEdges()), time.Since(start).Seconds())

	info, err := regions.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("regions: %d classes, %d regions", info.NumClasses, len(info.Regions))

	d, err := dfg.BuildWithInfo(g, info)
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	t.Logf("DFG: %d ops, %d dependences", st.Ops, st.Dependences)

	// SSA equivalence at scale.
	if err := ssa.EquivalentOnUses(ssa.Cytron(g), ssa.FromDFG(d)); err != nil {
		t.Fatalf("SSA forms differ at scale: %v", err)
	}

	// Constant propagation agreement at scale.
	a, b := constprop.CFG(g), constprop.DFG(d)
	for k, va := range a.UseVals {
		if b.UseVals[k] != va {
			t.Fatalf("constprop mismatch at %v", k)
		}
	}

	// Factored CDG partition matches FOW signatures at scale (spot check:
	// counts of classes must be sane).
	fact := cdg.BuildFactored(g)
	if fact.NumClasses < 2 || fact.NumClasses > g.NumNodes() {
		t.Fatalf("implausible class count %d", fact.NumClasses)
	}

	if el := time.Since(start); el > 5*time.Minute {
		t.Errorf("pipeline too slow at n=%d: %v", n, el)
	}
}

func TestWideAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	// 4000-statement breadth-heavy program: hundreds of sibling SESE
	// regions and a variable set in the hundreds. This is the shape the
	// region-parallel builder distributes; the parallel result must match
	// the serial one exactly even at this size.
	g, err := cfg.Build(workload.Wide(4000, 13))
	if err != nil {
		t.Fatal(err)
	}
	info, err := regions.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Regions) < 400 {
		t.Errorf("wide program should have hundreds of regions, got %d", len(info.Regions))
	}
	d, err := dfg.BuildWithInfo(g, info)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dfg.BuildParallelWithInfo(g, info, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != dp.String() {
		t.Fatal("parallel DFG differs from serial at scale")
	}
	if err := ssa.EquivalentOnUses(ssa.Cytron(g), ssa.FromDFG(d)); err != nil {
		t.Fatal(err)
	}
}

func TestIrreducibleAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	// 300 two-entry loops recovered from compiled bytecode: the region and
	// cycle-equivalence machinery on a large genuinely irreducible CFG that
	// no structured source could produce, exercised through both frontends.
	prog := workload.Irreducible(300, 13)
	g, err := cfg.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	info, err := regions.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dfg.BuildWithInfo(g, info)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssa.EquivalentOnUses(ssa.Cytron(g), ssa.FromDFG(d)); err != nil {
		t.Fatalf("SSA forms differ on irreducible graph: %v", err)
	}

	// The bytecode round trip at the same scale.
	rec, err := bcfront.RecoverCFG(bccompile.MustCompile(prog))
	if err != nil {
		t.Fatal(err)
	}
	rinfo, err := regions.Analyze(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dfg.BuildWithInfo(rec, rinfo); err != nil {
		t.Fatal(err)
	}
}

func TestDeepStraightLineNoOverflow(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	// 30k sequential statements: one giant equivalence class, deep
	// region chains, long multiedges.
	g, err := cfg.Build(workload.StraightLine(15000, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := regions.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumClasses != 1 {
		t.Errorf("straight line should have 1 class, got %d", info.NumClasses)
	}
	d, err := dfg.BuildWithInfo(g, info)
	if err != nil {
		t.Fatal(err)
	}
	if err := ssa.EquivalentOnUses(ssa.Cytron(g), ssa.FromDFG(d)); err != nil {
		t.Fatal(err)
	}
}
